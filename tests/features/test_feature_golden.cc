// Golden feature-vector regression test: bit-exact expected rows for known
// lowered programs, checked feature-by-feature against the extractor.
//
// Purpose: pin the extractor's exact numeric semantics so performance
// rewrites of the scoring data path are provably semantics-preserving. The
// expected values were produced by the extractor itself (hex-float literals
// round-trip exactly); any behavior change — intended or not — must
// regenerate them consciously and show up in review as a value diff.
//
// Regenerate: print each row as {name, value} pairs of the non-zero
// features with "%a" formatting (see the harness below for the layout).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/features/feature_extraction.h"
#include "tests/testing.h"

namespace ansor {
namespace {

struct GoldenRow {
  const char* stage;
  // Non-zero features by name; everything absent must be exactly 0.0f.
  std::vector<std::pair<const char*, float>> nonzero;
};

void ExpectGolden(const State& state, const std::vector<GoldenRow>& expect) {
  FeatureMatrix m = ExtractFeatures(Lower(state));
  ASSERT_EQ(m.rows(), expect.size());
  ASSERT_EQ(m.dim(), FeatureDim());
  const std::vector<std::string>& names = FeatureNames();
  std::unordered_map<std::string, size_t> index;
  for (size_t f = 0; f < names.size(); ++f) {
    index[names[f]] = f;
  }
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(m.row_stage(r), expect[r].stage) << "row " << r;
    std::vector<float> want(FeatureDim(), 0.0f);
    for (const auto& [name, value] : expect[r].nonzero) {
      auto it = index.find(name);
      ASSERT_NE(it, index.end()) << "unknown feature name " << name;
      want[it->second] = value;
    }
    for (size_t f = 0; f < FeatureDim(); ++f) {
      // Bit-exact: these are regression values from this extractor, not
      // approximations of an external reference.
      EXPECT_EQ(m.at(r, f), want[f]) << "row " << r << " feature " << names[f];
    }
  }
}

TEST(FeatureGolden, MatmulDefault) {
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  ExpectGolden(state, {
      {"C", {{"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.5c01a4p-3f}, {"intensity.1", 0x1.5c01a4p-3f}, {"intensity.2", 0x1.5c01a4p-3f}, {"intensity.3", 0x1.5c01a4p-3f}, {"intensity.4", 0x1.5c01a4p-3f}, {"intensity.5", 0x1.5c01a4p-3f}, {"intensity.6", 0x1.5c01a4p-3f}, {"intensity.7", 0x1.5c01a4p-3f}, {"intensity.8", 0x1.5c01a4p-3f}, {"intensity.9", 0x1.5c01a4p-3f}, {"buf0.write", 0x1p+0f}, {"buf0.bytes", 0x1.002e14p+3f}, {"buf0.unique_bytes", 0x1.002e14p+3f}, {"buf0.lines", 0x1.2934fp+1f}, {"buf0.unique_lines", 0x1.2934fp+1f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.lines_per_reuse", 0x1.2934fp+1f}, {"buf0.unique_lines_per_reuse", 0x1.2934fp+1f}, {"alloc.output_bytes", 0x1.002e14p+3f}, {"alloc.count", 0x1p+1f}, {"outer_loops", 0x1p+1f}, {"iters", 0x1.816e7ap+2f}, {"num_buffers", 0x1p+0f}, {"output_rank", 0x1p+1f}}},
      {"C", {{"f_add", 0x1.20171p+3f}, {"f_mul", 0x1.20171p+3f}, {"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.79538ep-1f}, {"intensity.1", 0x1.49df8ap-1f}, {"intensity.2", 0x1.172934p-1f}, {"intensity.3", 0x1.c16adep-2f}, {"intensity.4", 0x1.4bd764p-2f}, {"intensity.5", 0x1.020a02p-2f}, {"intensity.6", 0x1.d651dp-3f}, {"intensity.7", 0x1.a7d756p-3f}, {"intensity.8", 0x1.789ebp-3f}, {"intensity.9", 0x1.48a1b4p-3f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.6005c4p+3f}, {"buf0.unique_bytes", 0x1.002e14p+3f}, {"buf0.lines", 0x1.42d75ap+2f}, {"buf0.unique_lines", 0x1.2934fp+1f}, {"buf0.reuse_loop", 0x1p+0f}, {"buf0.reuse_dist_iters", 0x1.95c01ap+1f}, {"buf0.reuse_dist_bytes", 0x1.42d75ap+2f}, {"buf0.reuse_counter", 0x1.95c01ap+1f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf0.lines_per_reuse", 0x1.2934fp+1f}, {"buf0.unique_lines_per_reuse", 0x1.2b8034p-1f}, {"buf1.read", 0x1p+0f}, {"buf1.bytes", 0x1.6005c4p+3f}, {"buf1.unique_bytes", 0x1.002e14p+3f}, {"buf1.lines", 0x1.20171p+3f}, {"buf1.unique_lines", 0x1.95c01ap+1f}, {"buf1.reuse_loop", 0x1p+0f}, {"buf1.reuse_dist_iters", 0x1.816e7ap+2f}, {"buf1.reuse_dist_bytes", 0x1.002e14p+3f}, {"buf1.reuse_counter", 0x1.95c01ap+1f}, {"buf1.stride", 0x1.95c01ap+1f}, {"buf1.bytes_per_reuse", 0x1.002e14p+3f}, {"buf1.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf1.lines_per_reuse", 0x1.816e7ap+2f}, {"buf1.unique_lines_per_reuse", 0x1p+0f}, {"buf2.write", 0x1p+0f}, {"buf2.bytes", 0x1.6005c4p+3f}, {"buf2.unique_bytes", 0x1.002e14p+3f}, {"buf2.lines", 0x1.42d75ap+2f}, {"buf2.unique_lines", 0x1.816e7ap+2f}, {"buf2.reuse_loop", 0x1p+0f}, {"buf2.reuse_dist_iters", 0x1p+0f}, {"buf2.reuse_dist_bytes", 0x1.2934fp+1f}, {"buf2.reuse_counter", 0x1.95c01ap+1f}, {"buf2.bytes_per_reuse", 0x1.002e14p+3f}, {"buf2.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf2.lines_per_reuse", 0x1.2934fp+1f}, {"buf2.unique_lines_per_reuse", 0x1.95c01ap+1f}, {"alloc.output_bytes", 0x1.002e14p+3f}, {"alloc.count", 0x1p+1f}, {"outer_loops", 0x1.8p+1f}, {"iters", 0x1.20171p+3f}, {"is_reduction", 0x1p+0f}, {"num_buffers", 0x1.8p+1f}, {"output_rank", 0x1p+1f}}},
  });
}

TEST(FeatureGolden, MatmulReluScheduled) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4}));
  ASSERT_TRUE(state.Annotate("C", 0, IterAnnotation::kParallel));
  ASSERT_TRUE(state.Annotate("C", 3, IterAnnotation::kUnroll));
  ASSERT_TRUE(state.Annotate("D", 1, IterAnnotation::kVectorize));
  ASSERT_TRUE(state.Pragma("C", 16));
  ExpectGolden(state, {
      {"C", {{"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.innermost_len", 0x1.95c01ap+0f}, {"parallel.pos_outer_s", 0x1p+0f}, {"parallel.product", 0x1.95c01ap+0f}, {"parallel.count", 0x1p+0f}, {"intensity.0", 0x1.5c01a4p-3f}, {"intensity.1", 0x1.5c01a4p-3f}, {"intensity.2", 0x1.5c01a4p-3f}, {"intensity.3", 0x1.5c01a4p-3f}, {"intensity.4", 0x1.5c01a4p-3f}, {"intensity.5", 0x1.5c01a4p-3f}, {"intensity.6", 0x1.5c01a4p-3f}, {"intensity.7", 0x1.5c01a4p-3f}, {"intensity.8", 0x1.5c01a4p-3f}, {"intensity.9", 0x1.5c01a4p-3f}, {"buf0.write", 0x1p+0f}, {"buf0.bytes", 0x1.002e14p+3f}, {"buf0.unique_bytes", 0x1.002e14p+3f}, {"buf0.lines", 0x1.2934fp+1f}, {"buf0.unique_lines", 0x1.2934fp+1f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.lines_per_reuse", 0x1.2934fp+1f}, {"buf0.unique_lines_per_reuse", 0x1.2934fp+1f}, {"alloc.output_bytes", 0x1.002e14p+3f}, {"alloc.count", 0x1.2934fp+1f}, {"outer_loops", 0x1.8p+1f}, {"iters", 0x1.816e7ap+2f}, {"num_buffers", 0x1p+0f}, {"output_rank", 0x1p+1f}}},
      {"C", {{"f_add", 0x1.20171p+3f}, {"f_mul", 0x1.20171p+3f}, {"i_add", 0x1.20171p+3f}, {"i_mul", 0x1.20171p+3f}, {"vec.pos_none", 0x1p+0f}, {"unroll.innermost_len", 0x1.95c01ap+1f}, {"unroll.pos_inner_r", 0x1p+0f}, {"unroll.product", 0x1.95c01ap+1f}, {"unroll.count", 0x1p+0f}, {"parallel.innermost_len", 0x1.95c01ap+0f}, {"parallel.pos_outer_s", 0x1p+0f}, {"parallel.product", 0x1.95c01ap+0f}, {"parallel.count", 0x1p+0f}, {"intensity.0", 0x1.79538ep-1f}, {"intensity.1", 0x1.6048ep-1f}, {"intensity.2", 0x1.465d36p-1f}, {"intensity.3", 0x1.2b8034p-1f}, {"intensity.4", 0x1.f113bap-2f}, {"intensity.5", 0x1.83988ep-2f}, {"intensity.6", 0x1.0d58e4p-2f}, {"intensity.7", 0x1.d651dp-3f}, {"intensity.8", 0x1.90532ap-3f}, {"intensity.9", 0x1.48a1b4p-3f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.6005c4p+3f}, {"buf0.unique_bytes", 0x1.002e14p+3f}, {"buf0.lines", 0x1.42d75ap+2f}, {"buf0.unique_lines", 0x1.2934fp+1f}, {"buf0.reuse_loop", 0x1p+0f}, {"buf0.reuse_dist_iters", 0x1.95c01ap+1f}, {"buf0.reuse_dist_bytes", 0x1.42d75ap+2f}, {"buf0.reuse_counter", 0x1.95c01ap+1f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf0.lines_per_reuse", 0x1.2934fp+1f}, {"buf0.unique_lines_per_reuse", 0x1.2b8034p-1f}, {"buf1.read", 0x1p+0f}, {"buf1.bytes", 0x1.6005c4p+3f}, {"buf1.unique_bytes", 0x1.002e14p+3f}, {"buf1.lines", 0x1.20171p+3f}, {"buf1.unique_lines", 0x1.95c01ap+1f}, {"buf1.reuse_loop", 0x1p+0f}, {"buf1.reuse_dist_iters", 0x1.816e7ap+2f}, {"buf1.reuse_dist_bytes", 0x1.002e14p+3f}, {"buf1.reuse_counter", 0x1.2934fp+1f}, {"buf1.stride", 0x1.95c01ap+1f}, {"buf1.bytes_per_reuse", 0x1.20171p+3f}, {"buf1.unique_bytes_per_reuse", 0x1.816e7ap+2f}, {"buf1.lines_per_reuse", 0x1.c0b7f2p+2f}, {"buf1.unique_lines_per_reuse", 0x1.95c01ap+0f}, {"buf2.write", 0x1p+0f}, {"buf2.bytes", 0x1.6005c4p+3f}, {"buf2.unique_bytes", 0x1.002e14p+3f}, {"buf2.lines", 0x1.42d75ap+2f}, {"buf2.unique_lines", 0x1.816e7ap+2f}, {"buf2.reuse_loop", 0x1p+0f}, {"buf2.reuse_dist_iters", 0x1p+0f}, {"buf2.reuse_dist_bytes", 0x1.2934fp+1f}, {"buf2.reuse_counter", 0x1.95c01ap+1f}, {"buf2.bytes_per_reuse", 0x1.002e14p+3f}, {"buf2.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf2.lines_per_reuse", 0x1.2934fp+1f}, {"buf2.unique_lines_per_reuse", 0x1.95c01ap+1f}, {"alloc.output_bytes", 0x1.002e14p+3f}, {"alloc.count", 0x1.2934fp+1f}, {"outer_loops", 0x1p+2f}, {"iters", 0x1.20171p+3f}, {"auto_unroll_max_step", 0x1.0598fep+2f}, {"is_reduction", 0x1p+0f}, {"num_buffers", 0x1.8p+1f}, {"output_rank", 0x1p+1f}}},
      {"D", {{"f_other", 0x1.816e7ap+2f}, {"vec.innermost_len", 0x1.95c01ap+1f}, {"vec.pos_inner_s", 0x1p+0f}, {"vec.product", 0x1.95c01ap+1f}, {"vec.count", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.5c01a4p-3f}, {"intensity.1", 0x1.5c01a4p-3f}, {"intensity.2", 0x1.5c01a4p-3f}, {"intensity.3", 0x1.5c01a4p-3f}, {"intensity.4", 0x1.5c01a4p-3f}, {"intensity.5", 0x1.5c01a4p-3f}, {"intensity.6", 0x1.5c01a4p-3f}, {"intensity.7", 0x1.5c01a4p-3f}, {"intensity.8", 0x1.5c01a4p-3f}, {"intensity.9", 0x1.5c01a4p-3f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.002e14p+3f}, {"buf0.unique_bytes", 0x1.002e14p+3f}, {"buf0.lines", 0x1.2934fp+1f}, {"buf0.unique_lines", 0x1.2934fp+1f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.002e14p+3f}, {"buf0.lines_per_reuse", 0x1.2934fp+1f}, {"buf0.unique_lines_per_reuse", 0x1.2934fp+1f}, {"buf1.write", 0x1p+0f}, {"buf1.bytes", 0x1.002e14p+3f}, {"buf1.unique_bytes", 0x1.002e14p+3f}, {"buf1.lines", 0x1.2934fp+1f}, {"buf1.unique_lines", 0x1.2934fp+1f}, {"buf1.reuse_none", 0x1p+0f}, {"buf1.reuse_counter", 0x1p+0f}, {"buf1.stride", 0x1p+0f}, {"buf1.bytes_per_reuse", 0x1.002e14p+3f}, {"buf1.unique_bytes_per_reuse", 0x1.002e14p+3f}, {"buf1.lines_per_reuse", 0x1.2934fp+1f}, {"buf1.unique_lines_per_reuse", 0x1.2934fp+1f}, {"alloc.output_bytes", 0x1.002e14p+3f}, {"alloc.count", 0x1.2934fp+1f}, {"outer_loops", 0x1p+1f}, {"iters", 0x1.816e7ap+2f}, {"num_buffers", 0x1p+1f}, {"output_rank", 0x1p+1f}}},
  });
}

TEST(FeatureGolden, ReluPadMatmulDefault) {
  ComputeDAG dag = testing::ReluPadMatmul();
  State state(&dag);
  ExpectGolden(state, {
      {"B", {{"f_other", 0x1.a664f8p+2f}, {"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.5c01a4p-3f}, {"intensity.1", 0x1.5c01a4p-3f}, {"intensity.2", 0x1.5c01a4p-3f}, {"intensity.3", 0x1.5c01a4p-3f}, {"intensity.4", 0x1.5c01a4p-3f}, {"intensity.5", 0x1.5c01a4p-3f}, {"intensity.6", 0x1.5c01a4p-3f}, {"intensity.7", 0x1.5c01a4p-3f}, {"intensity.8", 0x1.5c01a4p-3f}, {"intensity.9", 0x1.5c01a4p-3f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.12d6cp+3f}, {"buf0.unique_bytes", 0x1.12d6cp+3f}, {"buf0.lines", 0x1.675768p+1f}, {"buf0.unique_lines", 0x1.675768p+1f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.12d6cp+3f}, {"buf0.unique_bytes_per_reuse", 0x1.12d6cp+3f}, {"buf0.lines_per_reuse", 0x1.675768p+1f}, {"buf0.unique_lines_per_reuse", 0x1.675768p+1f}, {"buf1.write", 0x1p+0f}, {"buf1.bytes", 0x1.12d6cp+3f}, {"buf1.unique_bytes", 0x1.12d6cp+3f}, {"buf1.lines", 0x1.675768p+1f}, {"buf1.unique_lines", 0x1.675768p+1f}, {"buf1.reuse_none", 0x1p+0f}, {"buf1.reuse_counter", 0x1p+0f}, {"buf1.stride", 0x1p+0f}, {"buf1.bytes_per_reuse", 0x1.12d6cp+3f}, {"buf1.unique_bytes_per_reuse", 0x1.12d6cp+3f}, {"buf1.lines_per_reuse", 0x1.675768p+1f}, {"buf1.unique_lines_per_reuse", 0x1.675768p+1f}, {"alloc.output_bytes", 0x1.12d6cp+3f}, {"alloc.count", 0x1.4ae00ep+1f}, {"outer_loops", 0x1p+1f}, {"iters", 0x1.a664f8p+2f}, {"num_buffers", 0x1p+1f}, {"output_rank", 0x1p+1f}}},
      {"C", {{"f_select", 0x1.c0b7f2p+2f}, {"i_cmp", 0x1.c0b7f2p+2f}, {"i_other", 0x1.c0b7f2p+2f}, {"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.49a784p-2f}, {"intensity.1", 0x1.49a784p-2f}, {"intensity.2", 0x1.49a784p-2f}, {"intensity.3", 0x1.49a784p-2f}, {"intensity.4", 0x1.49a784p-2f}, {"intensity.5", 0x1.49a784p-2f}, {"intensity.6", 0x1.49a784p-2f}, {"intensity.7", 0x1.49a784p-2f}, {"intensity.8", 0x1.49a784p-2f}, {"intensity.9", 0x1.49a784p-2f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.20171p+3f}, {"buf0.unique_bytes", 0x1.20171p+3f}, {"buf0.lines", 0x1.95c01ap+1f}, {"buf0.unique_lines", 0x1.95c01ap+1f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.20171p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.20171p+3f}, {"buf0.lines_per_reuse", 0x1.95c01ap+1f}, {"buf0.unique_lines_per_reuse", 0x1.95c01ap+1f}, {"buf1.write", 0x1p+0f}, {"buf1.bytes", 0x1.20171p+3f}, {"buf1.unique_bytes", 0x1.20171p+3f}, {"buf1.lines", 0x1.95c01ap+1f}, {"buf1.unique_lines", 0x1.95c01ap+1f}, {"buf1.reuse_none", 0x1p+0f}, {"buf1.reuse_counter", 0x1p+0f}, {"buf1.stride", 0x1p+0f}, {"buf1.bytes_per_reuse", 0x1.20171p+3f}, {"buf1.unique_bytes_per_reuse", 0x1.20171p+3f}, {"buf1.lines_per_reuse", 0x1.95c01ap+1f}, {"buf1.unique_lines_per_reuse", 0x1.95c01ap+1f}, {"alloc.output_bytes", 0x1.20171p+3f}, {"alloc.count", 0x1.4ae00ep+1f}, {"outer_loops", 0x1p+1f}, {"iters", 0x1.c0b7f2p+2f}, {"num_buffers", 0x1p+1f}, {"output_rank", 0x1p+1f}}},
      {"E", {{"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.5c01a4p-3f}, {"intensity.1", 0x1.5c01a4p-3f}, {"intensity.2", 0x1.5c01a4p-3f}, {"intensity.3", 0x1.5c01a4p-3f}, {"intensity.4", 0x1.5c01a4p-3f}, {"intensity.5", 0x1.5c01a4p-3f}, {"intensity.6", 0x1.5c01a4p-3f}, {"intensity.7", 0x1.5c01a4p-3f}, {"intensity.8", 0x1.5c01a4p-3f}, {"intensity.9", 0x1.5c01a4p-3f}, {"buf0.write", 0x1p+0f}, {"buf0.bytes", 0x1.c0b7f2p+2f}, {"buf0.unique_bytes", 0x1.c0b7f2p+2f}, {"buf0.lines", 0x1.95c01ap+0f}, {"buf0.unique_lines", 0x1.95c01ap+0f}, {"buf0.reuse_none", 0x1p+0f}, {"buf0.reuse_counter", 0x1p+0f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.c0b7f2p+2f}, {"buf0.unique_bytes_per_reuse", 0x1.c0b7f2p+2f}, {"buf0.lines_per_reuse", 0x1.95c01ap+0f}, {"buf0.unique_lines_per_reuse", 0x1.95c01ap+0f}, {"alloc.output_bytes", 0x1.c0b7f2p+2f}, {"alloc.count", 0x1.4ae00ep+1f}, {"outer_loops", 0x1p+1f}, {"iters", 0x1.42d75ap+2f}, {"num_buffers", 0x1p+0f}, {"output_rank", 0x1p+1f}}},
      {"E", {{"f_add", 0x1.20171p+3f}, {"f_mul", 0x1.20171p+3f}, {"vec.pos_none", 0x1p+0f}, {"unroll.pos_none", 0x1p+0f}, {"parallel.pos_none", 0x1p+0f}, {"intensity.0", 0x1.4dddp-1f}, {"intensity.1", 0x1.24f54ap-1f}, {"intensity.2", 0x1.f34f06p-2f}, {"intensity.3", 0x1.974e44p-2f}, {"intensity.4", 0x1.3530bcp-2f}, {"intensity.5", 0x1.effd1ap-3f}, {"intensity.6", 0x1.c9494ep-3f}, {"intensity.7", 0x1.a212p-3f}, {"intensity.8", 0x1.7a53a8p-3f}, {"intensity.9", 0x1.520a96p-3f}, {"buf0.read", 0x1p+0f}, {"buf0.bytes", 0x1.6005c4p+3f}, {"buf0.unique_bytes", 0x1.20171p+3f}, {"buf0.lines", 0x1.42d75ap+2f}, {"buf0.unique_lines", 0x1.95c01ap+1f}, {"buf0.reuse_loop", 0x1p+0f}, {"buf0.reuse_dist_iters", 0x1.0598fep+2f}, {"buf0.reuse_dist_bytes", 0x1.816e7ap+2f}, {"buf0.reuse_counter", 0x1.2934fp+1f}, {"buf0.stride", 0x1p+0f}, {"buf0.bytes_per_reuse", 0x1.20171p+3f}, {"buf0.unique_bytes_per_reuse", 0x1.c0b7f2p+2f}, {"buf0.lines_per_reuse", 0x1.95c01ap+1f}, {"buf0.unique_lines_per_reuse", 0x1.95c01ap+0f}, {"buf1.read", 0x1p+0f}, {"buf1.bytes", 0x1.6005c4p+3f}, {"buf1.unique_bytes", 0x1.002e14p+3f}, {"buf1.lines", 0x1.20171p+3f}, {"buf1.unique_lines", 0x1.0598fep+2f}, {"buf1.reuse_loop", 0x1p+0f}, {"buf1.reuse_dist_iters", 0x1.816e7ap+2f}, {"buf1.reuse_dist_bytes", 0x1.002e14p+3f}, {"buf1.reuse_counter", 0x1.95c01ap+1f}, {"buf1.stride", 0x1.2934fp+1f}, {"buf1.bytes_per_reuse", 0x1.002e14p+3f}, {"buf1.unique_bytes_per_reuse", 0x1.42d75ap+2f}, {"buf1.lines_per_reuse", 0x1.816e7ap+2f}, {"buf1.unique_lines_per_reuse", 0x1.95c01ap+0f}, {"buf2.write", 0x1p+0f}, {"buf2.bytes", 0x1.6005c4p+3f}, {"buf2.unique_bytes", 0x1.c0b7f2p+2f}, {"buf2.lines", 0x1.42d75ap+2f}, {"buf2.unique_lines", 0x1.42d75ap+2f}, {"buf2.reuse_loop", 0x1p+0f}, {"buf2.reuse_dist_iters", 0x1p+0f}, {"buf2.reuse_dist_bytes", 0x1.2934fp+1f}, {"buf2.reuse_counter", 0x1.0598fep+2f}, {"buf2.bytes_per_reuse", 0x1.c0b7f2p+2f}, {"buf2.unique_bytes_per_reuse", 0x1.95c01ap+1f}, {"buf2.lines_per_reuse", 0x1.95c01ap+0f}, {"buf2.unique_lines_per_reuse", 0x1.95c01ap+0f}, {"alloc.output_bytes", 0x1.c0b7f2p+2f}, {"alloc.count", 0x1.4ae00ep+1f}, {"outer_loops", 0x1.8p+1f}, {"iters", 0x1.20171p+3f}, {"is_reduction", 0x1p+0f}, {"num_buffers", 0x1.8p+1f}, {"output_rank", 0x1p+1f}}},
  });
}

}  // namespace
}  // namespace ansor
