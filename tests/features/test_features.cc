#include <gtest/gtest.h>
#include <cmath>

#include "src/features/feature_extraction.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(Features, DimensionIs164) {
  // Appendix B: "The length of a feature vector ... is 164."
  EXPECT_EQ(FeatureDim(), 164u);
  EXPECT_EQ(FeatureNames().size(), 164u);
}

TEST(Features, OneRowPerStatement) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  auto rows = ExtractStateFeatures(state);
  // C init, C accumulate, D store.
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), FeatureDim());
  }
}

TEST(Features, FailedLoweringYieldsNoRows) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 99, {2});
  EXPECT_TRUE(ExtractStateFeatures(state).empty());
}

TEST(Features, AnnotationFeaturesRespond) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State plain(&dag);
  State annotated(&dag);
  ASSERT_TRUE(annotated.Annotate("C", 0, IterAnnotation::kParallel));
  ASSERT_TRUE(annotated.Reorder("C", {0, 2, 1}));
  ASSERT_TRUE(annotated.Annotate("C", 2, IterAnnotation::kVectorize));

  auto plain_rows = ExtractStateFeatures(plain);
  auto annotated_rows = ExtractStateFeatures(annotated);
  ASSERT_FALSE(plain_rows.empty());
  ASSERT_FALSE(annotated_rows.empty());

  // Locate the vectorize innermost-length and parallel product features.
  const auto& names = FeatureNames();
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  int vec_len = index_of("vec.innermost_len");
  int par_prod = index_of("parallel.product");
  ASSERT_GE(vec_len, 0);
  ASSERT_GE(par_prod, 0);
  // The accumulate row (row 1) of the annotated state shows both.
  EXPECT_GT(annotated_rows[1][static_cast<size_t>(vec_len)], 0.0f);
  EXPECT_GT(annotated_rows[1][static_cast<size_t>(par_prod)], 0.0f);
  EXPECT_EQ(plain_rows[1][static_cast<size_t>(vec_len)], 0.0f);
  EXPECT_EQ(plain_rows[1][static_cast<size_t>(par_prod)], 0.0f);
}

TEST(Features, BufferFeaturesDistinguishPrograms) {
  // Tiled and untiled matmuls must produce different feature rows (otherwise
  // the cost model cannot distinguish them).
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State plain(&dag);
  State tiled(&dag);
  ASSERT_TRUE(tiled.Split("C", 0, {8}));
  ASSERT_TRUE(tiled.Split("C", 2, {8}));
  ASSERT_TRUE(tiled.Split("C", 4, {8}));
  ASSERT_TRUE(tiled.Reorder("C", {0, 2, 4, 1, 3, 5}));
  auto a = ExtractStateFeatures(plain);
  auto b = ExtractStateFeatures(tiled);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r] != b[r]) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Features, ReductionFlagSet) {
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  auto rows = ExtractStateFeatures(state);
  const auto& names = FeatureNames();
  int flag = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "is_reduction") {
      flag = static_cast<int>(i);
    }
  }
  ASSERT_GE(flag, 0);
  // Row 0 = init (not reduction combine), row 1 = accumulate.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][static_cast<size_t>(flag)], 0.0f);
  EXPECT_EQ(rows[1][static_cast<size_t>(flag)], 1.0f);
}

TEST(Features, ValuesAreFinite) {
  ComputeDAG dag = testing::MatrixNorm(8, 128);
  State state(&dag);
  ASSERT_TRUE(state.Split("S", 1, {16}));
  ASSERT_TRUE(state.Rfactor("S", 2, nullptr));
  auto rows = ExtractStateFeatures(state);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    for (float v : row) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace ansor
