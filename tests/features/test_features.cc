#include <gtest/gtest.h>
#include <cmath>

#include "src/features/feature_extraction.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(Features, DimensionIs164) {
  // Appendix B: "The length of a feature vector ... is 164."
  EXPECT_EQ(FeatureDim(), 164u);
  EXPECT_EQ(FeatureNames().size(), 164u);
}

TEST(Features, OneRowPerStatement) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  FeatureMatrix m = ExtractStateFeatures(state);
  // C init, C accumulate, D store.
  ASSERT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.dim(), FeatureDim());
  EXPECT_EQ(m.data().size(), 3u * FeatureDim());
}

TEST(Features, FailedLoweringYieldsNoRows) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 99, {2});
  EXPECT_TRUE(ExtractStateFeatures(state).empty());
}

TEST(Features, AnnotationFeaturesRespond) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State plain(&dag);
  State annotated(&dag);
  ASSERT_TRUE(annotated.Annotate("C", 0, IterAnnotation::kParallel));
  ASSERT_TRUE(annotated.Reorder("C", {0, 2, 1}));
  ASSERT_TRUE(annotated.Annotate("C", 2, IterAnnotation::kVectorize));

  FeatureMatrix plain_rows = ExtractStateFeatures(plain);
  FeatureMatrix annotated_rows = ExtractStateFeatures(annotated);
  ASSERT_FALSE(plain_rows.empty());
  ASSERT_FALSE(annotated_rows.empty());

  // Locate the vectorize innermost-length and parallel product features.
  const auto& names = FeatureNames();
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  int vec_len = index_of("vec.innermost_len");
  int par_prod = index_of("parallel.product");
  ASSERT_GE(vec_len, 0);
  ASSERT_GE(par_prod, 0);
  // The accumulate row (row 1) of the annotated state shows both.
  EXPECT_GT(annotated_rows.at(1, static_cast<size_t>(vec_len)), 0.0f);
  EXPECT_GT(annotated_rows.at(1, static_cast<size_t>(par_prod)), 0.0f);
  EXPECT_EQ(plain_rows.at(1, static_cast<size_t>(vec_len)), 0.0f);
  EXPECT_EQ(plain_rows.at(1, static_cast<size_t>(par_prod)), 0.0f);
}

TEST(Features, BufferFeaturesDistinguishPrograms) {
  // Tiled and untiled matmuls must produce different feature rows (otherwise
  // the cost model cannot distinguish them).
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State plain(&dag);
  State tiled(&dag);
  ASSERT_TRUE(tiled.Split("C", 0, {8}));
  ASSERT_TRUE(tiled.Split("C", 2, {8}));
  ASSERT_TRUE(tiled.Split("C", 4, {8}));
  ASSERT_TRUE(tiled.Reorder("C", {0, 2, 4, 1, 3, 5}));
  FeatureMatrix a = ExtractStateFeatures(plain);
  FeatureMatrix b = ExtractStateFeatures(tiled);
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_NE(a, b);
}

TEST(Features, StrideMergesMinimumAcrossAccesses) {
  // C[i,j] = sum_k A[i,k] * A[k,j]: the same buffer is accessed twice in one
  // statement with innermost (k) strides 1 and 8. The merged stride feature
  // must be the minimum (the fastest-varying access determines locality),
  // not whichever access happened to be processed last.
  Tensor a = Placeholder("A", {8, 8});
  Tensor c = Compute("C", {8, 8}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(8, "k");
    return Sum(a(i[0], r) * a(r, i[1]), {r});
  });
  ComputeDAG dag({a, c});
  State state(&dag);
  FeatureMatrix rows = ExtractStateFeatures(state);
  ASSERT_EQ(rows.rows(), 2u);  // init + accumulate
  const auto& names = FeatureNames();
  int stride = -1;
  int reads = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "buf0.stride") {
      stride = static_cast<int>(i);
    }
    if (names[i] == "buf0.read") {
      reads = static_cast<int>(i);
    }
  }
  ASSERT_GE(stride, 0);
  ASSERT_GE(reads, 0);
  // A moves twice the bytes of the store to C, so it occupies slot 0 of the
  // accumulate row; log2(1 + min(1, 8)) == 1.
  EXPECT_EQ(rows.at(1, static_cast<size_t>(reads)), 1.0f);
  EXPECT_EQ(rows.at(1, static_cast<size_t>(stride)), 1.0f);
}

TEST(Features, EqualBytesSlotOrderIsFirstEncounter) {
  // In the matmul accumulate row A, B and C all move the same bytes per
  // iteration, so buffer-slot order falls entirely to the tie-break. It must
  // follow access order — loads A, B, then the store of C — independent of
  // any hash-map iteration order.
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  FeatureMatrix rows = ExtractStateFeatures(state);
  ASSERT_EQ(rows.rows(), 2u);
  const auto& names = FeatureNames();
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  auto at = [&](const std::string& name) {
    int i = index_of(name);
    EXPECT_GE(i, 0) << name;
    return rows.at(1, static_cast<size_t>(i));
  };
  // Slot 0: A (read, innermost stride 1). Slot 1: B (read, stride 8).
  // Slot 2: C (the store).
  float stride8 = static_cast<float>(std::log2(9.0));  // Log2p1(8)
  EXPECT_EQ(at("buf0.read"), 1.0f);
  EXPECT_EQ(at("buf0.stride"), 1.0f);
  EXPECT_EQ(at("buf1.read"), 1.0f);
  EXPECT_EQ(at("buf1.stride"), stride8);
  EXPECT_EQ(at("buf2.write"), 1.0f);
}

TEST(Features, ReductionFlagSet) {
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  FeatureMatrix rows = ExtractStateFeatures(state);
  const auto& names = FeatureNames();
  int flag = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "is_reduction") {
      flag = static_cast<int>(i);
    }
  }
  ASSERT_GE(flag, 0);
  // Row 0 = init (not reduction combine), row 1 = accumulate.
  ASSERT_EQ(rows.rows(), 2u);
  EXPECT_EQ(rows.at(0, static_cast<size_t>(flag)), 0.0f);
  EXPECT_EQ(rows.at(1, static_cast<size_t>(flag)), 1.0f);
}

TEST(Features, ValuesAreFinite) {
  ComputeDAG dag = testing::MatrixNorm(8, 128);
  State state(&dag);
  ASSERT_TRUE(state.Split("S", 1, {16}));
  ASSERT_TRUE(state.Rfactor("S", 2, nullptr));
  FeatureMatrix rows = ExtractStateFeatures(state);
  ASSERT_FALSE(rows.empty());
  for (float v : rows.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace ansor
