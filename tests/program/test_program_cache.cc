#include <gtest/gtest.h>

#include <set>

#include "src/evolution/evolution.h"
#include "src/program/program_cache.h"
#include "src/scheduler/task_scheduler.h"
#include "src/search/search_policy.h"
#include "src/sketch/sketch.h"
#include "src/support/thread_pool.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// Distinct single-split states over one DAG: cheap cache keys with distinct
// signatures.
State SplitState(const ComputeDAG* dag, int64_t len) {
  State s(dag);
  EXPECT_TRUE(s.Split("C", 0, {len}));
  return s;
}

TEST(ProgramCache, ArtifactCarriesLoweringFeaturesAndSignature) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s = SplitState(&dag, 4);
  ProgramCache cache;
  ProgramArtifactPtr artifact = cache.GetOrBuild(s);
  ASSERT_NE(artifact, nullptr);
  EXPECT_TRUE(artifact->ok());
  EXPECT_EQ(artifact->signature(), StepSignature(s));
  EXPECT_FALSE(artifact->features().empty());
  EXPECT_EQ(artifact->features().rows(), artifact->row_stages().size());
  // The artifact must hold exactly what a direct compile produces.
  FeatureMatrix direct = ExtractFeatures(Lower(s));
  EXPECT_EQ(artifact->features(), direct);
  EXPECT_EQ(artifact->row_stages(), direct.row_stages());
}

TEST(ProgramCache, EqualSignaturesShareOneArtifact) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  ProgramCache cache;
  // Distinct State objects, identical step history: one artifact.
  ProgramArtifactPtr a = cache.GetOrBuild(SplitState(&dag, 4));
  ProgramArtifactPtr b = cache.GetOrBuild(SplitState(&dag, 4));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  ProgramCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ProgramCache, LruEvictionOrder) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  // One shard so the LRU order is global and exact.
  ProgramCache cache(/*capacity=*/2, /*num_shards=*/1);
  State s1 = SplitState(&dag, 2);
  State s2 = SplitState(&dag, 4);
  State s3 = SplitState(&dag, 8);

  cache.GetOrBuild(s1);
  cache.GetOrBuild(s2);
  EXPECT_EQ(cache.size(), 2u);
  cache.GetOrBuild(s1);  // hit: s1 becomes most recent, s2 is now LRU
  cache.GetOrBuild(s3);  // evicts s2, not s1

  ProgramCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(cache.size(), 2u);

  cache.GetOrBuild(s1);  // survived the eviction: hit
  EXPECT_EQ(cache.stats().hits, 2);
  cache.GetOrBuild(s2);  // was evicted: miss
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(ProgramCache, CapacityZeroBypassesStorage) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  ProgramCache cache(/*capacity=*/0);
  State s = SplitState(&dag, 4);
  ProgramArtifactPtr a = cache.GetOrBuild(s);
  ProgramArtifactPtr b = cache.GetOrBuild(s);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());  // nothing is stored
  EXPECT_EQ(cache.size(), 0u);
  ProgramCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 0);
  // Bypass must be semantically invisible: both builds agree bit-for-bit.
  EXPECT_EQ(a->signature(), b->signature());
  EXPECT_EQ(a->features(), b->features());
}

TEST(ProgramCache, FailedStatesAreNotCached) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  ProgramCache cache;
  State bad(&dag);
  EXPECT_FALSE(bad.Split("no_such_stage", 0, {2}));
  ASSERT_TRUE(bad.failed());
  ProgramArtifactPtr artifact = cache.GetOrBuild(bad);
  ASSERT_NE(artifact, nullptr);
  EXPECT_FALSE(artifact->ok());
  // Failed states share the normalized empty step history, so caching them
  // would alias every failure onto one artifact.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProgramCache, DagIdentityIsPartOfTheKey) {
  // Identical step lists over different DAGs must not alias, so one cache
  // can safely be shared across tasks.
  ComputeDAG dag_a = testing::Matmul(16, 16, 16);
  ComputeDAG dag_b = testing::Matmul(32, 32, 32);
  ProgramCache cache;
  ProgramArtifactPtr a = cache.GetOrBuild(SplitState(&dag_a, 4));
  ProgramArtifactPtr b = cache.GetOrBuild(SplitState(&dag_b, 4));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(ProgramCacheConcurrency, ShardedParallelGetOrBuild) {
  // Hammer a small sharded cache from a pool; run under the tsan preset.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  Rng rng(3);
  auto population = SampleLowerablePopulation(&dag, 8, &rng);
  ASSERT_EQ(population.size(), 8u);

  ProgramCache cache(/*capacity=*/64, /*num_shards=*/4);
  ThreadPool pool(4);
  const size_t kLookups = 128;
  std::vector<ProgramArtifactPtr> out(kLookups);
  pool.ParallelFor(kLookups, [&](size_t i) {
    out[i] = cache.GetOrBuild(population[i % population.size()]);
  });

  for (size_t i = 0; i < kLookups; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_TRUE(out[i]->ok());
    EXPECT_EQ(out[i]->signature(), StepSignature(population[i % population.size()]));
  }
  ProgramCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), static_cast<int64_t>(kLookups));
  EXPECT_GT(stats.hits, 0);
  EXPECT_LE(cache.size(), 8u);
}

TEST(ProgramCacheConcurrency, ConcurrentStageScoreMemos) {
  // Parallel crossover-heavy evolution against a shared cache exercises the
  // artifact score-memo locking; run under the tsan preset.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  Rng rng(5);
  auto init = SampleLowerablePopulation(&dag, 8, &rng);
  ASSERT_FALSE(init.empty());
  ProgramCache cache;
  ThreadPool pool(4);
  RandomCostModel model(9);
  EvolutionOptions options;
  options.population = 16;
  options.generations = 2;
  options.crossover_probability = 1.0;
  options.thread_pool = &pool;
  options.program_cache = &cache;
  EvolutionarySearch es(&dag, &model, Rng(10), options);
  EXPECT_FALSE(es.Evolve(init, 4).empty());
  EXPECT_GT(es.stats().crossover_score_hits + es.stats().crossover_score_misses, 0);
}

// Same seed ⇒ bit-identical evolution results for any thread count, any
// cache capacity (0 = disabled, tiny = eviction-heavy, default) and any
// verify_level in {0, 1}: on a corpus of legal programs the static
// pre-filter rejects nothing, so enabling it must not perturb the search.
TEST(ProgramCacheDeterminism, EvolveThreadAndCapacityMatrix) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  Rng init_rng(25);
  auto init = SampleLowerablePopulation(&dag, 8, &init_rng);
  ASSERT_EQ(init.size(), 8u);

  // GBDT model trained identically per run so crossover stage scores are
  // real learned values, not constants.
  auto run = [&](size_t threads, size_t capacity, int verify_level) {
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    std::vector<FeatureMatrix> features;
    std::vector<double> throughputs;
    for (const State& s : init) {
      features.push_back(ExtractStateFeatures(s));
      MeasureResult r = measurer.Measure(s);
      throughputs.push_back(r.valid ? r.throughput : 0.0);
    }
    model.Update(dag.CanonicalHash(), features, throughputs);

    ThreadPool pool(threads);
    ProgramCache cache(capacity);
    EvolutionOptions options;
    options.population = 16;
    options.generations = 3;
    options.crossover_probability = 0.5;
    options.thread_pool = &pool;
    options.program_cache = &cache;
    options.verify_level = verify_level;
    EvolutionarySearch es(&dag, &model, Rng(26), options);
    std::vector<std::string> sigs;
    for (const State& s : es.Evolve(init, 6)) {
      sigs.push_back(StepSignature(s));
    }
    EXPECT_FALSE(sigs.empty());
    return sigs;
  };

  auto reference = run(1, ProgramCache::kDefaultCapacity, /*verify_level=*/1);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t capacity : {size_t{0}, size_t{2}, ProgramCache::kDefaultCapacity}) {
      for (int verify_level : {0, 1}) {
        EXPECT_EQ(run(threads, capacity, verify_level), reference)
            << "threads=" << threads << " capacity=" << capacity
            << " verify_level=" << verify_level;
      }
    }
  }
}

// Same matrix through the full tuning loop: TuneTask must produce a
// bit-identical history whether the task cache is disabled, tiny, or
// default-sized, on 1 or 4 threads, with the static verifier off or on
// (a legal-only corpus: the pre-filter never fires, so it cannot perturb).
TEST(ProgramCacheDeterminism, TuneTaskThreadAndCapacityMatrix) {
  auto run = [&](size_t threads, size_t capacity, int verify_level) {
    ThreadPool pool(threads);
    MeasureOptions mopts;
    mopts.thread_pool = &pool;
    Measurer measurer(MachineModel::IntelCpu20Core(), mopts);
    GbdtCostModel model;
    SearchTask task = MakeSearchTask("t", testing::Matmul(64, 64, 64));
    SearchOptions options = testing::SmallSearchOptions();
    options.thread_pool = &pool;
    options.program_cache_capacity = capacity;
    options.verify_level = verify_level;
    return TuneTask(task, &measurer, &model, /*trials=*/24, 8, options);
  };

  TuneResult reference = run(1, ProgramCache::kDefaultCapacity, /*verify_level=*/1);
  ASSERT_TRUE(reference.best_state.has_value());
  auto check = [&](size_t threads, size_t capacity, int verify_level) {
    TuneResult r = run(threads, capacity, verify_level);
    ASSERT_EQ(r.history.size(), reference.history.size());
    for (size_t i = 0; i < r.history.size(); ++i) {
      EXPECT_EQ(r.history[i].first, reference.history[i].first);
      EXPECT_EQ(r.history[i].second, reference.history[i].second)  // bit-identical
          << "threads=" << threads << " capacity=" << capacity
          << " verify_level=" << verify_level << " round=" << i;
    }
    EXPECT_EQ(r.best_seconds, reference.best_seconds);
    ASSERT_TRUE(r.best_state.has_value());
    EXPECT_EQ(StepSignature(*r.best_state), StepSignature(*reference.best_state));
  };
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t capacity : {size_t{0}, size_t{8}, ProgramCache::kDefaultCapacity}) {
      check(threads, capacity, /*verify_level=*/1);
    }
    // Verifier off: same history on a legal-only corpus, fewer total runs —
    // the off/on equivalence is the claim, not the full cross-product.
    check(threads, ProgramCache::kDefaultCapacity, /*verify_level=*/0);
  }
}

TEST(ProgramCacheIntegration, TuneRoundReusesArtifactsAcrossConsumers) {
  // One round compiles each candidate at most once across evolution scoring,
  // measurement and training-feature extraction — so cache hits must appear,
  // and a second round seeded with the best measured programs must hit on
  // artifacts compiled in round one.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeSearchTask("t", testing::Matmul(32, 32, 32));
  TaskTuner tuner(task, &measurer, &model, testing::SmallSearchOptions());

  tuner.TuneRound(8);
  ProgramCacheStats after_one = tuner.program_cache().stats();
  EXPECT_GT(after_one.lookups(), 0);
  EXPECT_GT(after_one.hits, 0);

  tuner.TuneRound(8);
  ProgramCacheStats after_two = tuner.program_cache().stats();
  EXPECT_GT(after_two.hits, after_one.hits);
}

TEST(ProgramCacheIntegration, SchedulerAggregatesPerTaskCaches) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeSearchTask("a", testing::Matmul(16, 16, 16)),
                                   MakeSearchTask("b", testing::MatmulRelu(16, 16, 16))};
  std::vector<NetworkSpec> nets(1);
  nets[0].name = "net";
  nets[0].task_indices = {0, 1};
  TaskSchedulerOptions options;
  options.measures_per_round = 8;
  options.search = testing::SmallSearchOptions();
  TaskScheduler scheduler(std::move(tasks), std::move(nets), Objective::SumLatency(),
                          &measurer, &model, options);
  scheduler.Tune(4);
  ProgramCacheStats total = scheduler.AggregateProgramCacheStats();
  EXPECT_GT(total.lookups(), 0);
  EXPECT_GT(total.hits, 0);
}

}  // namespace
}  // namespace ansor
