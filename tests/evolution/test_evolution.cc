#include <gtest/gtest.h>

#include "src/evolution/evolution.h"
#include "src/hwsim/measurer.h"
#include "src/exec/interpreter.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

std::vector<State> InitPopulation(const ComputeDAG* dag, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<State> init = SampleLowerablePopulation(dag, count, &rng);
  EXPECT_EQ(init.size(), static_cast<size_t>(count));
  return init;
}

TEST(Evolution, TileSizeMutationPreservesProductAndSemantics) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 4, 1);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(2));
  int mutated_ok = 0;
  for (const State& parent : init) {
    for (int trial = 0; trial < 5; ++trial) {
      State child = es.MutateTileSize(parent);
      if (child.failed()) {
        continue;
      }
      ++mutated_ok;
      EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    }
  }
  EXPECT_GT(mutated_ok, 10);
}

TEST(Evolution, PragmaMutationChangesValue) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 8, 3);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(4));
  bool changed = false;
  for (const State& parent : init) {
    State child = es.MutatePragma(parent);
    if (child.failed()) {
      continue;
    }
    // Same steps except possibly a pragma value.
    ASSERT_EQ(child.steps().size(), parent.steps().size());
    for (size_t i = 0; i < child.steps().size(); ++i) {
      if (child.steps()[i].kind == StepKind::kPragma &&
          child.steps()[i].pragma_value != parent.steps()[i].pragma_value) {
        changed = true;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Evolution, VectorizeMutationTogglesAnnotation) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 4, 5);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(6));
  int ok = 0;
  for (const State& parent : init) {
    for (int t = 0; t < 4; ++t) {
      State child = es.MutateVectorize(parent);
      if (!child.failed()) {
        ++ok;
        EXPECT_EQ(VerifyAgainstNaive(child), "");
      }
    }
  }
  EXPECT_GT(ok, 4);
}

TEST(Evolution, ComputeLocationMutationVerifies) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 6, 7);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(8));
  int ok = 0;
  for (const State& parent : init) {
    State child = es.MutateComputeLocation(parent);
    if (child.failed() || !Lower(child).ok) {
      continue;  // unsupported placements are rejected downstream
    }
    EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    ++ok;
  }
  EXPECT_GT(ok, 0);
}

TEST(Evolution, CrossoverMergesAndVerifies) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(9);
  // Parents sampled from the SAME sketch so skeletons match.
  const State& sketch = sketches[0];
  std::vector<State> parents;
  while (parents.size() < 2) {
    State s = SampleCompleteProgram(sketch, &dag, &rng);
    if (!s.failed() && Lower(s).ok && !s.steps().empty()) {
      // Crossover requires matching step skeletons.
      if (parents.empty() || s.steps().size() == parents[0].steps().size()) {
        parents.push_back(std::move(s));
      }
    }
  }
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(10));
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    State child = es.Crossover(parents[0], parents[1]);
    if (child.failed() || !Lower(child).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    ++ok;
  }
  EXPECT_GT(ok, 5);
}

TEST(Evolution, CrossoverRejectsMismatchedSkeletons) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_GE(sketches.size(), 2u);
  Rng rng(11);
  State a = SampleCompleteProgram(sketches[0], &dag, &rng);
  State b = SampleCompleteProgram(sketches[1], &dag, &rng);
  if (a.failed() || b.failed() || a.steps().size() == b.steps().size()) {
    GTEST_SKIP() << "could not construct mismatched parents";
  }
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(12));
  State child = es.Crossover(a, b);
  EXPECT_TRUE(child.failed());
}

TEST(Evolution, EvolveImprovesPredictedFitness) {
  // With a cost model that prefers programs whose innermost loops are
  // vectorized, evolution should enrich the population accordingly. We use
  // the GBDT model trained on simulator data for realism.
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  auto init = InitPopulation(&dag, 16, 13);

  // Train the model on the initial population's simulated throughput.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<FeatureMatrix> features;
  std::vector<double> throughputs;
  for (const State& s : init) {
    features.push_back(ExtractStateFeatures(s));
    MeasureResult r = measurer.Measure(s);
    throughputs.push_back(r.valid ? r.throughput : 0.0);
  }
  model.Update(dag.CanonicalHash(), features, throughputs);

  EvolutionOptions options;
  options.population = 32;
  options.generations = 3;
  EvolutionarySearch es(&dag, &model, Rng(14), options);
  auto best = es.Evolve(init, 8);
  ASSERT_FALSE(best.empty());

  // The evolved best (by prediction) should measure at least as fast as the
  // median of the initial random population.
  std::vector<double> init_seconds;
  for (const State& s : init) {
    init_seconds.push_back(measurer.Measure(s).seconds);
  }
  double evolved_best = 1e30;
  for (const State& s : best) {
    MeasureResult r = measurer.Measure(s);
    if (r.valid) {
      evolved_best = std::min(evolved_best, r.seconds);
    }
  }
  std::sort(init_seconds.begin(), init_seconds.end());
  EXPECT_LT(evolved_best, init_seconds[init_seconds.size() / 2] * 1.05);
}

TEST(Evolution, FailedMutationsNormalizeToEmptyStepHistory) {
  // Regression: a mid-replay failure used to return the partially-replayed
  // state. Any failed result must be the canonical State::Failure with an
  // empty step history, so partial states can never leak into a population.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 6, 21);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(22));
  for (const State& parent : init) {
    for (int t = 0; t < 8; ++t) {
      for (const State& child : {es.MutateTileSize(parent), es.MutatePragma(parent),
                          es.MutateParallelGranularity(parent), es.MutateVectorize(parent),
                          es.MutateComputeLocation(parent),
                          es.Crossover(parent, init[0])}) {
        if (child.failed()) {
          EXPECT_TRUE(child.steps().empty()) << child.error();
          EXPECT_FALSE(child.error().empty());
        }
      }
    }
  }
}

TEST(Evolution, ReplayWithSplitEditNormalizesMidReplayFailure) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(23));
  // Valid split, then a fuse whose range is out of bounds: the replay fails
  // on the second step and must not return the one-step partial state.
  std::vector<Step> steps;
  steps.push_back(MakeSplitStep("C", 0, {4}));
  steps.push_back(MakeFuseStep("C", 5, 3));
  State result = es.ReplayWithSplitEdit(
      steps, [](size_t, int64_t, std::vector<int64_t>*) {});
  EXPECT_TRUE(result.failed());
  EXPECT_TRUE(result.steps().empty());
  EXPECT_FALSE(result.error().empty());
}

TEST(Evolution, UnlowerableStatesGetNoSelectionWeight) {
  // Regression: states whose lowering/feature extraction fails used to keep
  // selection weight and could be picked as parents. With the fix, a
  // population of only unlowerable states terminates without generating a
  // single child.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  // Valid step application (C is a real stage, iterator 0 exists) whose
  // lowering fails: C does not read D, so compute_at cannot be lowered.
  State bad(&dag);
  ASSERT_TRUE(bad.ComputeAt("D", "C", 0));
  ASSERT_FALSE(bad.failed());
  ASSERT_FALSE(Lower(bad).ok);

  RandomCostModel model(1);
  EvolutionOptions options;
  options.population = 8;
  options.generations = 2;
  EvolutionarySearch es(&dag, &model, Rng(24), options);
  auto best = es.Evolve({bad, bad, bad, bad}, 4);
  EXPECT_TRUE(best.empty());
  EXPECT_EQ(es.stats().child_attempts, 0);
}

TEST(Evolution, EvolveDeterministicAcrossThreadCounts) {
  // Same seed => bit-identical populations and stats whether child generation
  // runs on one thread or four (per-slot forked RNG streams).
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 8, 25);
  ThreadPool pool1(1);
  ThreadPool pool4(4);

  auto run = [&](ThreadPool* pool) {
    RandomCostModel model(7);
    EvolutionOptions options;
    options.population = 16;
    options.generations = 3;
    options.thread_pool = pool;
    EvolutionarySearch es(&dag, &model, Rng(26), options);
    auto best = es.Evolve(init, 6);
    std::vector<std::string> sigs;
    for (const State& s : best) {
      sigs.push_back(StepSignature(s));
    }
    return std::make_pair(sigs, es.stats());
  };

  auto [sigs1, stats1] = run(&pool1);
  auto [sigs4, stats4] = run(&pool4);
  EXPECT_EQ(sigs1, sigs4);
  EXPECT_GT(stats1.children_generated, 0);
  EXPECT_EQ(stats1.children_generated, stats4.children_generated);
  EXPECT_EQ(stats1.child_attempts, stats4.child_attempts);
  EXPECT_EQ(stats1.crossover_score_hits, stats4.crossover_score_hits);
  EXPECT_EQ(stats1.crossover_score_misses, stats4.crossover_score_misses);
}

TEST(Evolution, CrossoverScoreCacheScoresEachMemberOnce) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 2, 27);

  std::vector<ProgramArtifactPtr> artifacts;
  for (const State& s : init) {
    artifacts.push_back(std::make_shared<const ProgramArtifact>(s));
    ASSERT_TRUE(artifacts.back()->ok());
    ASSERT_FALSE(artifacts.back()->features().empty());
  }

  // Two identically seeded models: the cache must produce exactly the scores
  // direct per-program scoring would.
  RandomCostModel cache_model(5);
  RandomCostModel direct_model(5);
  CrossoverScoreCache cache(&artifacts, &cache_model);

  cache.Request(0);
  cache.Request(0);  // second request of a queued member is a hit
  cache.Request(1);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 1);
  cache.Flush();

  for (size_t i = 0; i < init.size(); ++i) {
    std::unordered_map<std::string, double> expect;
    auto preds = direct_model.PredictStatements(artifacts[i]->features());
    for (size_t r = 0; r < preds.size(); ++r) {
      expect[artifacts[i]->row_stages()[r]] += preds[r];
    }
    EXPECT_EQ(cache.Get(i), expect);
  }

  cache.Request(1);  // already computed: a hit, no new model call
  cache.Flush();
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 2);

  // The memos live on the artifacts: a fresh cache over the same artifacts
  // (a later generation or round) starts with hits, not misses.
  CrossoverScoreCache second(&artifacts, &cache_model);
  second.Request(0);
  second.Request(1);
  EXPECT_EQ(second.hits(), 2);
  EXPECT_EQ(second.misses(), 0);
  EXPECT_EQ(second.Get(0), cache.Get(0));
}

TEST(Evolution, CrossoverScoreMemoInvalidatedByModelUpdate) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 2, 28);
  std::vector<ProgramArtifactPtr> artifacts;
  for (const State& s : init) {
    artifacts.push_back(std::make_shared<const ProgramArtifact>(s));
  }

  GbdtCostModel model;
  {
    CrossoverScoreCache cache(&artifacts, &model);
    cache.Request(0);
    cache.Flush();
    EXPECT_EQ(cache.misses(), 1);
  }
  {
    // Same model version: the memo survives.
    CrossoverScoreCache cache(&artifacts, &model);
    cache.Request(0);
    EXPECT_EQ(cache.hits(), 1);
  }
  // Retraining bumps the model version, so stale memos read as absent.
  Measurer measurer(MachineModel::IntelCpu20Core());
  model.Update(dag.CanonicalHash(), {artifacts[0]->features()},
               {measurer.Measure(init[0]).throughput});
  {
    CrossoverScoreCache cache(&artifacts, &model);
    cache.Request(0);
    EXPECT_EQ(cache.misses(), 1);
    cache.Flush();  // recomputes under the new version
  }
  // A different model instance never matches another model's memo, even at
  // an equal version number.
  GbdtCostModel other;
  CrossoverScoreCache cache(&artifacts, &other);
  cache.Request(1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(Evolution, EvolveReportsCacheStats) {
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  auto init = InitPopulation(&dag, 8, 29);
  RandomCostModel model(3);
  EvolutionOptions options;
  options.population = 24;
  options.generations = 2;
  options.crossover_probability = 1.0;  // crossover-only: exercise the cache
  EvolutionarySearch es(&dag, &model, Rng(30), options);
  es.Evolve(init, 4);
  const EvolutionStats& stats = es.stats();
  EXPECT_GT(stats.child_attempts, 0);
  // Each compatible crossover makes exactly two parent requests, and misses
  // are bounded by one scoring per population member per generation.
  EXPECT_EQ((stats.crossover_score_hits + stats.crossover_score_misses) % 2, 0);
  EXPECT_LE(stats.crossover_score_misses,
            static_cast<int64_t>(options.population + 8) * options.generations);
  // Population scoring went through the (per-call) ProgramCache: at minimum
  // every generation's population resolution is counted.
  EXPECT_GT(stats.program_cache_hits + stats.program_cache_misses, 0);
}

TEST(Evolution, EvolveReturnsDistinctStates) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 8, 15);
  RandomCostModel model(3);
  EvolutionOptions options;
  options.population = 16;
  options.generations = 2;
  EvolutionarySearch es(&dag, &model, Rng(16), options);
  auto best = es.Evolve(init, 6);
  std::set<std::string> sigs;
  for (const State& s : best) {
    EXPECT_TRUE(sigs.insert(StepSignature(s)).second);
  }
}

}  // namespace
}  // namespace ansor
