#include <gtest/gtest.h>

#include "src/evolution/evolution.h"
#include "src/hwsim/measurer.h"
#include "src/exec/interpreter.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

std::vector<State> InitPopulation(const ComputeDAG* dag, int count, uint64_t seed) {
  auto sketches = GenerateSketches(dag);
  Rng rng(seed);
  std::vector<State> init;
  while (static_cast<int>(init.size()) < count) {
    State s = SampleCompleteProgram(sketches[rng.Index(sketches.size())], dag, &rng);
    if (!s.failed() && Lower(s).ok) {
      init.push_back(std::move(s));
    }
  }
  return init;
}

TEST(Evolution, TileSizeMutationPreservesProductAndSemantics) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 4, 1);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(2));
  int mutated_ok = 0;
  for (const State& parent : init) {
    for (int trial = 0; trial < 5; ++trial) {
      State child = es.MutateTileSize(parent);
      if (child.failed()) {
        continue;
      }
      ++mutated_ok;
      EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    }
  }
  EXPECT_GT(mutated_ok, 10);
}

TEST(Evolution, PragmaMutationChangesValue) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 8, 3);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(4));
  bool changed = false;
  for (const State& parent : init) {
    State child = es.MutatePragma(parent);
    if (child.failed()) {
      continue;
    }
    // Same steps except possibly a pragma value.
    ASSERT_EQ(child.steps().size(), parent.steps().size());
    for (size_t i = 0; i < child.steps().size(); ++i) {
      if (child.steps()[i].kind == StepKind::kPragma &&
          child.steps()[i].pragma_value != parent.steps()[i].pragma_value) {
        changed = true;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Evolution, VectorizeMutationTogglesAnnotation) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 4, 5);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(6));
  int ok = 0;
  for (const State& parent : init) {
    for (int t = 0; t < 4; ++t) {
      State child = es.MutateVectorize(parent);
      if (!child.failed()) {
        ++ok;
        EXPECT_EQ(VerifyAgainstNaive(child), "");
      }
    }
  }
  EXPECT_GT(ok, 4);
}

TEST(Evolution, ComputeLocationMutationVerifies) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 6, 7);
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(8));
  int ok = 0;
  for (const State& parent : init) {
    State child = es.MutateComputeLocation(parent);
    if (child.failed() || !Lower(child).ok) {
      continue;  // unsupported placements are rejected downstream
    }
    EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    ++ok;
  }
  EXPECT_GT(ok, 0);
}

TEST(Evolution, CrossoverMergesAndVerifies) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(9);
  // Parents sampled from the SAME sketch so skeletons match.
  const State& sketch = sketches[0];
  std::vector<State> parents;
  while (parents.size() < 2) {
    State s = SampleCompleteProgram(sketch, &dag, &rng);
    if (!s.failed() && Lower(s).ok && s.steps().size() > 0) {
      // Crossover requires matching step skeletons.
      if (parents.empty() || s.steps().size() == parents[0].steps().size()) {
        parents.push_back(std::move(s));
      }
    }
  }
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(10));
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    State child = es.Crossover(parents[0], parents[1]);
    if (child.failed() || !Lower(child).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    ++ok;
  }
  EXPECT_GT(ok, 5);
}

TEST(Evolution, CrossoverRejectsMismatchedSkeletons) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_GE(sketches.size(), 2u);
  Rng rng(11);
  State a = SampleCompleteProgram(sketches[0], &dag, &rng);
  State b = SampleCompleteProgram(sketches[1], &dag, &rng);
  if (a.failed() || b.failed() || a.steps().size() == b.steps().size()) {
    GTEST_SKIP() << "could not construct mismatched parents";
  }
  RandomCostModel model(1);
  EvolutionarySearch es(&dag, &model, Rng(12));
  State child = es.Crossover(a, b);
  EXPECT_TRUE(child.failed());
}

TEST(Evolution, EvolveImprovesPredictedFitness) {
  // With a cost model that prefers programs whose innermost loops are
  // vectorized, evolution should enrich the population accordingly. We use
  // the GBDT model trained on simulator data for realism.
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  auto init = InitPopulation(&dag, 16, 13);

  // Train the model on the initial population's simulated throughput.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<std::vector<std::vector<float>>> features;
  std::vector<double> throughputs;
  for (const State& s : init) {
    features.push_back(ExtractStateFeatures(s));
    MeasureResult r = measurer.Measure(s);
    throughputs.push_back(r.valid ? r.throughput : 0.0);
  }
  model.Update(dag.CanonicalHash(), features, throughputs);

  EvolutionOptions options;
  options.population = 32;
  options.generations = 3;
  EvolutionarySearch es(&dag, &model, Rng(14), options);
  auto best = es.Evolve(init, 8);
  ASSERT_FALSE(best.empty());

  // The evolved best (by prediction) should measure at least as fast as the
  // median of the initial random population.
  std::vector<double> init_seconds;
  for (const State& s : init) {
    init_seconds.push_back(measurer.Measure(s).seconds);
  }
  double evolved_best = 1e30;
  for (const State& s : best) {
    MeasureResult r = measurer.Measure(s);
    if (r.valid) {
      evolved_best = std::min(evolved_best, r.seconds);
    }
  }
  std::sort(init_seconds.begin(), init_seconds.end());
  EXPECT_LT(evolved_best, init_seconds[init_seconds.size() / 2] * 1.05);
}

TEST(Evolution, EvolveReturnsDistinctStates) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto init = InitPopulation(&dag, 8, 15);
  RandomCostModel model(3);
  EvolutionOptions options;
  options.population = 16;
  options.generations = 2;
  EvolutionarySearch es(&dag, &model, Rng(16), options);
  auto best = es.Evolve(init, 6);
  std::set<std::string> sigs;
  for (const State& s : best) {
    std::string sig;
    for (const Step& step : s.steps()) {
      sig += step.ToString();
    }
    EXPECT_TRUE(sigs.insert(sig).second);
  }
}

}  // namespace
}  // namespace ansor
