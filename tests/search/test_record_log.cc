#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/exec/interpreter.h"
#include "src/sampler/annotation.h"
#include "src/search/record_log.h"
#include "src/search/search_policy.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(StepSerialization, RoundTripsEveryKind) {
  std::vector<Step> steps = {
      MakeSplitStep("C", 2, {4, 8, 2}),
      MakeFollowSplitStep("D", 0, 3, 2),
      MakeFuseStep("C", 1, 3),
      MakeReorderStep("C", {3, 1, 0, 2}),
      MakeComputeAtStep("C.cache", "C", 5),
      MakeComputeInlineStep("B"),
      MakeComputeRootStep("B"),
      MakeCacheWriteStep("C"),
      MakeRfactorStep("S", 2),
      MakeAnnotationStep("C", 4, IterAnnotation::kVectorize),
      MakePragmaStep("C", 512),
  };
  for (const Step& step : steps) {
    std::string text = SerializeStep(step);
    auto parsed = ParseStep(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(SerializeStep(*parsed), text);
    EXPECT_EQ(parsed->kind, step.kind);
    EXPECT_EQ(parsed->stage, step.stage);
    EXPECT_EQ(parsed->iter, step.iter);
    EXPECT_EQ(parsed->lengths, step.lengths);
    EXPECT_EQ(parsed->order, step.order);
    EXPECT_EQ(parsed->target_stage, step.target_stage);
    EXPECT_EQ(parsed->target_iter, step.target_iter);
    EXPECT_EQ(parsed->annotation, step.annotation);
    EXPECT_EQ(parsed->pragma_value, step.pragma_value);
  }
}

TEST(StepSerialization, StageNamesWithDots) {
  Step step = MakeComputeAtStep("conv2d.cache", "relu", 7);
  auto parsed = ParseStep(SerializeStep(step));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stage, "conv2d.cache");
  EXPECT_EQ(parsed->target_stage, "relu");
}

TEST(StepSerialization, MalformedInputsRejected) {
  EXPECT_FALSE(ParseStep("").has_value());
  EXPECT_FALSE(ParseStep("nonsense").has_value());
  EXPECT_FALSE(ParseStep("XX,1,2@C").has_value());
  EXPECT_FALSE(ParseStep("SP@C").has_value());  // missing fields
}

TEST(RecordSerialization, RoundTrip) {
  TuningRecord record;
  record.task_id = 0xdeadbeef12345678ULL;
  record.seconds = 1.25e-4;
  record.steps = {MakeSplitStep("C", 0, {8}), MakeAnnotationStep("C", 0,
                                                                 IterAnnotation::kParallel)};
  std::string line = SerializeRecord(record);
  auto parsed = ParseRecord(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->task_id, record.task_id);
  EXPECT_NEAR(parsed->seconds, record.seconds, record.seconds * 1e-5);
  ASSERT_EQ(parsed->steps.size(), 2u);
}

TEST(RecordSerialization, MalformedLinesRejected) {
  EXPECT_FALSE(ParseRecord("").has_value());
  EXPECT_FALSE(ParseRecord("task=12").has_value());
  EXPECT_FALSE(ParseRecord("task=12|seconds=abc|steps=").has_value() &&
               std::isfinite(ParseRecord("task=12|seconds=abc|steps=")->seconds) == false);
  EXPECT_FALSE(ParseRecord("a=1|b=2|c=3").has_value());
}

TEST(RecordLogTest, BestForPicksLowestLatency) {
  RecordLog log;
  log.Add({1, 5e-3, 0.0, {}});
  log.Add({1, 2e-3, 0.0, {}});
  log.Add({2, 1e-3, 0.0, {}});
  auto best = log.BestFor(1);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->seconds, 2e-3);
  EXPECT_FALSE(log.BestFor(99).has_value());
}

TEST(RecordLogTest, SerializeDeserializeAll) {
  RecordLog log;
  log.Add({7, 1e-3, 0.0, {MakeSplitStep("C", 0, {4})}});
  log.Add({8, 2e-3, 0.0, {MakeCacheWriteStep("C")}});
  RecordLog copy;
  EXPECT_EQ(copy.Deserialize(log.Serialize()), 2u);
  EXPECT_EQ(copy.records().size(), 2u);
  EXPECT_EQ(copy.records()[0].task_id, 7u);
}

TEST(RecordLogTest, LoadFromFileReportsLoadedAndSkipped) {
  // Two good lines, two malformed: the load must surface exactly what it
  // kept and what it dropped instead of silently shrinking the log.
  std::string path = ::testing::TempDir() + "/ansor_records_mixed.log";
  {
    RecordLog good;
    good.Add({1, 1e-3, 0.0, {MakeSplitStep("C", 0, {4})}});
    good.Add({2, 2e-3, 0.0, {MakeCacheWriteStep("C")}});
    ASSERT_TRUE(good.SaveToFile(path));
    std::ofstream append(path, std::ios::app);
    append << "task=12|seconds=1e-3|steps=XX,0,4@C\n";  // unknown step kind
    append << "total garbage line\n";
  }
  RecordLog loaded;
  RecordLoadStats stats = loaded.LoadFromFile(path);
  EXPECT_TRUE(stats);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(loaded.records().size(), 2u);

  RecordLoadStats missing = loaded.LoadFromFile(path + ".does_not_exist");
  EXPECT_FALSE(missing);
  EXPECT_EQ(missing.loaded, 0u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, ReadsBinaryStores) {
  // The wrapper auto-detects the fleet store's binary codec: old call sites
  // can load new files, so the migration path runs in both directions.
  RecordStore store;
  TuningRecord r;
  r.task_id = 9;
  r.seconds = 4e-3;
  r.throughput = 2e9;
  r.steps = {MakeSplitStep("C", 0, {2})};
  store.Add(std::move(r));
  std::string path = ::testing::TempDir() + "/ansor_records_binary.bin";
  ASSERT_TRUE(store.SaveToFile(path, RecordCodec::kBinary));

  RecordLog log;
  RecordLoadStats stats = log.LoadFromFile(path);
  EXPECT_TRUE(stats);
  EXPECT_TRUE(stats.index_ok);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].task_id, 9u);
  EXPECT_DOUBLE_EQ(log.records()[0].throughput, 2e9);
  std::remove(path.c_str());
}

TEST(RecordLogTest, FileRoundTrip) {
  RecordLog log;
  log.Add({42, 3e-3, 0.0, {MakeSplitStep("C", 1, {2, 2})}});
  std::string path = ::testing::TempDir() + "/ansor_records_test.log";
  ASSERT_TRUE(log.SaveToFile(path));
  RecordLog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  ASSERT_EQ(loaded.records().size(), 1u);
  EXPECT_EQ(loaded.records()[0].task_id, 42u);
  std::remove(path.c_str());
}

TEST(RecordLogTest, ReplayBestReconstructsProgram) {
  // Tune briefly with logging enabled, then replay the best program from the
  // log and verify it measures identically.
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  SearchTask task = MakeSearchTask("mm", dag);
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  RecordLog log;
  SearchOptions options;
  options.population = 12;
  options.generations = 1;
  options.record_log = &log;
  TuneResult result = TuneTask(task, &measurer, &model, 16, 8, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_GT(log.records().size(), 0u);

  State replayed = log.ReplayBest(task.dag.get());
  ASSERT_FALSE(replayed.failed());
  MeasureResult again = measurer.Measure(replayed);
  ASSERT_TRUE(again.valid);
  EXPECT_DOUBLE_EQ(again.seconds, result.best_seconds);
  EXPECT_EQ(VerifyAgainstNaive(replayed), "");
}

TEST(RecordLogTest, ReplayBestFailsForUnknownTask) {
  RecordLog log;
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State replayed = log.ReplayBest(&dag);
  EXPECT_TRUE(replayed.failed());
}

TEST(RecordLogTest, SampledProgramsRoundTripThroughSerialization) {
  // Property: any sampled program's step list survives serialize -> parse ->
  // replay with identical structure.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
    if (program.failed()) {
      continue;
    }
    std::vector<Step> round_tripped;
    for (const Step& step : program.steps()) {
      auto parsed = ParseStep(SerializeStep(step));
      ASSERT_TRUE(parsed.has_value()) << SerializeStep(step);
      round_tripped.push_back(std::move(*parsed));
    }
    State replayed = State::Replay(&dag, round_tripped);
    ASSERT_FALSE(replayed.failed());
    ASSERT_EQ(replayed.stages().size(), program.stages().size());
    for (size_t s = 0; s < program.stages().size(); ++s) {
      EXPECT_EQ(replayed.stages()[s].iters.size(), program.stages()[s].iters.size());
    }
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace ansor
