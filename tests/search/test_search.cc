#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/exec/interpreter.h"
#include "src/search/search_policy.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

SearchTask MakeTask(ComputeDAG dag, const std::string& name = "t") {
  return MakeSearchTask(name, std::move(dag));
}

TEST(SearchPolicy, TuneFindsValidProgram) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  SearchOptions options = testing::SmallSearchOptions();
  TuneResult result = TuneTask(task, &measurer, &model, /*trials=*/32, 16, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_LT(result.best_seconds, 1.0);
  EXPECT_FALSE(result.history.empty());
}

TEST(SearchPolicy, SearchImprovesOverRounds) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(128, 128, 128));
  SearchOptions options = testing::SmallSearchOptions();
  TaskTuner tuner(task, &measurer, &model, options);
  double first = tuner.TuneRound(12);
  for (int r = 0; r < 4; ++r) {
    tuner.TuneRound(12);
  }
  double last = tuner.best_seconds();
  EXPECT_LE(last, first);  // best-so-far is monotone
  EXPECT_EQ(tuner.history().size(), 5u);
  EXPECT_GE(tuner.total_measures(), 48);
}

TEST(SearchPolicy, FineTuningBeatsRandomOnSameBudget) {
  // Fig. 7 "No fine-tuning" ablation: with the same trial budget, evolution +
  // learned model should find at least as good a program as random sampling.
  SearchTask task = MakeTask(MakeConv2d(4, 64, 14, 14, 64, 3, 3, 1, 1));
  int budget = 32;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchOptions tuned = testing::SmallSearchOptions();
  TuneResult with_tuning = TuneTask(task, &m1, &model, budget, 16, tuned);

  Measurer m2(MachineModel::IntelCpu20Core());
  GbdtCostModel dummy;
  SearchOptions random_only = tuned;
  random_only.enable_fine_tuning = false;
  TuneResult random_result = TuneTask(task, &m2, &dummy, budget, 16, random_only);

  ASSERT_TRUE(with_tuning.best_state.has_value());
  ASSERT_TRUE(random_result.best_state.has_value());
  EXPECT_LE(with_tuning.best_seconds, random_result.best_seconds * 1.10);
}

TEST(SearchPolicy, BestStateVerifiesSemantics) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::MatmulRelu(16, 16, 16));
  SearchOptions options = testing::SmallSearchOptions();
  TuneResult result = TuneTask(task, &measurer, &model, 24, 16, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_EQ(VerifyAgainstNaive(*result.best_state), "");
}

TEST(SearchPolicy, LimitedSpaceFindsWorseOrEqualPrograms) {
  // Fig. 7 "Limited space": restricting the sketch space must not find better
  // programs than the full space under a generous budget.
  // Needs the seed budget: with a trimmed search the full space does not
  // reliably beat the limited one and the Fig. 7 claim cannot be asserted.
  SearchTask task = MakeTask(MakeTransposedConv2d(1, 64, 8, 8, 32, 4, 4, 2, 1));
  int budget = 64;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model1;
  SearchOptions full;
  full.population = 24;
  full.generations = 3;
  TuneResult full_result = TuneTask(task, &m1, &model1, budget, 16, full);

  Measurer m2(MachineModel::IntelCpu20Core());
  GbdtCostModel model2;
  SearchOptions limited = full;
  limited.sketch.enable_cache_write = false;
  limited.sketch.enable_rfactor = false;
  limited.sketch.space_levels = 2;
  limited.sketch.reduce_levels = 1;
  limited.sampler.unroll_options = {16};
  TuneResult limited_result = TuneTask(task, &m2, &model2, budget, 16, limited);

  ASSERT_TRUE(full_result.best_state.has_value());
  ASSERT_TRUE(limited_result.best_state.has_value());
  EXPECT_LE(full_result.best_seconds, limited_result.best_seconds * 1.15);
}

TEST(SearchPolicy, TaskIdStableAcrossConstruction) {
  SearchTask a = MakeTask(testing::Matmul(32, 32, 32));
  SearchTask b = MakeTask(testing::Matmul(32, 32, 32));
  EXPECT_EQ(a.task_id(), b.task_id());
  EXPECT_GT(a.flop_count(), 0.0);
}

TEST(Baselines, VendorLibraryProducesValidSchedule) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  TuneResult r = VendorLibrary(task, &measurer);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_LT(r.best_seconds, 1.0);
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

TEST(Baselines, VendorLibraryIsDeterministic) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(MakeConv2d(1, 32, 14, 14, 32, 3, 3, 1, 1));
  TuneResult a = VendorLibrary(task, &measurer);
  TuneResult b = VendorLibrary(task, &measurer);
  EXPECT_DOUBLE_EQ(a.best_seconds, b.best_seconds);
}

TEST(Baselines, TemplateSearchRespectsBudgetAndFindsPrograms) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  TuneResult r = TemplateSearch(task, &measurer, 32);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_LE(measurer.trial_count(), 32 + 16);
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

TEST(Baselines, AnsorBeatsTemplateSearchOnT2D) {
  // The headline qualitative claim of Fig. 6: Ansor's larger space wins on
  // the transposed convolution (zero-multiplication elimination is outside
  // the template space).
  // Needs the seed budget: beating template search on T2D relies on the
  // evolutionary phase having room to discover the zero-multiplication trick.
  SearchTask task = MakeTask(MakeTransposedConv2d(1, 128, 8, 8, 64, 4, 4, 2, 1));
  int budget = 64;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchOptions options;
  options.population = 24;
  options.generations = 3;
  TuneResult ansor = TuneTask(task, &m1, &model, budget, 16, options);

  Measurer m2(MachineModel::IntelCpu20Core());
  TuneResult tmpl = TemplateSearch(task, &m2, budget);

  ASSERT_TRUE(ansor.best_state.has_value());
  ASSERT_TRUE(tmpl.best_state.has_value());
  EXPECT_LT(ansor.best_seconds, tmpl.best_seconds * 1.02);
}

TEST(Baselines, BeamSearchProducesValidPrograms) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::MatmulRelu(16, 16, 16));
  BeamSearchOptions options;
  options.beam_width = 4;
  options.expansions_per_state = 2;
  TuneResult r = BeamSearch(task, &measurer, &model, 24, options);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

}  // namespace
}  // namespace ansor
