#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "src/baselines/baselines.h"
#include "src/exec/interpreter.h"
#include "src/search/search_policy.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

SearchTask MakeTask(ComputeDAG dag, const std::string& name = "t") {
  return MakeSearchTask(name, std::move(dag));
}


TEST(SearchPolicy, TuneFindsValidProgram) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  SearchOptions options = testing::SmallSearchOptions();
  TuneResult result = TuneTask(task, &measurer, &model, /*trials=*/32, 16, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_LT(result.best_seconds, 1.0);
  EXPECT_FALSE(result.history.empty());
}

TEST(SearchPolicy, SearchImprovesOverRounds) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(128, 128, 128));
  SearchOptions options = testing::SmallSearchOptions();
  TaskTuner tuner(task, &measurer, &model, options);
  double first = tuner.TuneRound(12);
  for (int r = 0; r < 4; ++r) {
    tuner.TuneRound(12);
  }
  double last = tuner.best_seconds();
  EXPECT_LE(last, first);  // best-so-far is monotone
  EXPECT_EQ(tuner.history().size(), 5u);
  EXPECT_GE(tuner.total_measures(), 48);
}

TEST(SearchPolicy, FineTuningBeatsRandomOnSameBudget) {
  // Fig. 7 "No fine-tuning" ablation: with the same trial budget, evolution +
  // learned model should find at least as good a program as random sampling.
  // Budget 48 (not 32): below that the comparison is decided by seed luck —
  // at 32 trials roughly 3 of 10 seeds fail the 10%-slack assertion, at 48
  // all pass, so the test checks the algorithm rather than one trajectory.
  SearchTask task = MakeTask(MakeConv2d(4, 64, 14, 14, 64, 3, 3, 1, 1));
  int budget = 48;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchOptions tuned = testing::SmallSearchOptions();
  TuneResult with_tuning = TuneTask(task, &m1, &model, budget, 16, tuned);

  Measurer m2(MachineModel::IntelCpu20Core());
  GbdtCostModel dummy;
  SearchOptions random_only = tuned;
  random_only.enable_fine_tuning = false;
  TuneResult random_result = TuneTask(task, &m2, &dummy, budget, 16, random_only);

  ASSERT_TRUE(with_tuning.best_state.has_value());
  ASSERT_TRUE(random_result.best_state.has_value());
  EXPECT_LE(with_tuning.best_seconds, random_result.best_seconds * 1.10);
}

TEST(SearchPolicy, InvalidMeasurementsAreNotBlacklisted) {
  // Regression: TuneRound used to record a candidate's signature before
  // measuring, so one transient invalid measurement permanently blacklisted
  // the program. Inject failures for every measurement of round one: nothing
  // may enter the measured-signature set, and after the transient condition
  // clears, the same programs must be measurable again.
  bool fail_all = true;
  MeasureOptions mopts;
  mopts.fail_injector = [&fail_all](const State&) { return fail_all; };
  Measurer measurer(MachineModel::IntelCpu20Core(), mopts);
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(16, 16, 16));
  TaskTuner tuner(task, &measurer, &model, testing::SmallSearchOptions());

  tuner.TuneRound(8);
  int64_t first = tuner.total_measures();
  EXPECT_GT(first, 0);
  EXPECT_EQ(tuner.invalid_measures(), first);  // every trial failed...
  EXPECT_EQ(tuner.measured_signature_count(), 0u);  // ...and none is blacklisted
  EXPECT_TRUE(std::isinf(tuner.best_seconds()));
  // Transient failures must not become zero-throughput training samples.
  EXPECT_EQ(model.num_samples(), 0u);

  fail_all = false;  // the transient condition clears
  tuner.TuneRound(8);
  EXPECT_GT(tuner.total_measures(), first);
  EXPECT_GT(tuner.measured_signature_count(), 0u);
  EXPECT_TRUE(std::isfinite(tuner.best_seconds()));
}

TEST(SearchPolicy, DeterministicallyInvalidProgramsStopConsumingBudget) {
  // A program that always fails measurement must not leak one trial per round
  // forever: after max_invalid_measures failed attempts its signature is
  // blacklisted like a measured program. The injector fails everything and
  // records how often each program is measured.
  std::mutex mu;  // MeasureBatch calls the injector from pool threads
  std::unordered_map<std::string, int> measured_count;
  MeasureOptions mopts;
  mopts.fail_injector = [&](const State& s) {
    std::lock_guard<std::mutex> lock(mu);
    measured_count[StepSignature(s)] += 1;
    return true;
  };
  Measurer measurer(MachineModel::IntelCpu20Core(), mopts);
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(16, 16, 16));
  SearchOptions options = testing::SmallSearchOptions();
  // Threshold 1: the first failure already confirms the program as
  // deterministically bad, so every program is measured at most once and
  // trains a zero-throughput sample.
  options.max_invalid_measures = 1;
  TaskTuner tuner(task, &measurer, &model, options);
  for (int round = 0; round < 6; ++round) {
    tuner.TuneRound(8);
  }
  EXPECT_GT(tuner.invalid_measures(), 0);
  for (const auto& [sig, count] : measured_count) {
    EXPECT_LE(count, options.max_invalid_measures) << sig;
  }
  // Confirmed-deterministic failures (those that hit the threshold) DO train
  // zero-throughput samples so the model learns to avoid their family.
  EXPECT_GT(model.num_samples(), 0u);
}

TEST(SearchPolicy, ValidMeasurementsAreRecordedOnce) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::Matmul(16, 16, 16));
  TaskTuner tuner(task, &measurer, &model, testing::SmallSearchOptions());
  tuner.TuneRound(8);
  EXPECT_GT(tuner.measured_signature_count(), 0u);
  EXPECT_LE(static_cast<int64_t>(tuner.measured_signature_count()),
            tuner.total_measures() - tuner.invalid_measures());
}

TEST(SearchPolicy, HistoryInvariantToThreadCount) {
  // Same SearchOptions::seed must yield a bit-identical TuneResult whether
  // the whole round (evolution, feature extraction, batch measurement) runs
  // on a 1-thread or a 4-thread pool.
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  auto run = [&](ThreadPool* pool) {
    MeasureOptions mopts;
    mopts.thread_pool = pool;
    Measurer measurer(MachineModel::IntelCpu20Core(), mopts);
    GbdtCostModel model;
    SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
    SearchOptions options = testing::SmallSearchOptions();
    options.thread_pool = pool;
    return TuneTask(task, &measurer, &model, /*trials=*/32, 16, options);
  };
  TuneResult r1 = run(&pool1);
  TuneResult r4 = run(&pool4);
  ASSERT_EQ(r1.history.size(), r4.history.size());
  for (size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(r1.history[i].first, r4.history[i].first);
    EXPECT_EQ(r1.history[i].second, r4.history[i].second);  // bit-identical
  }
  EXPECT_EQ(r1.best_seconds, r4.best_seconds);
  ASSERT_TRUE(r1.best_state.has_value() && r4.best_state.has_value());
  EXPECT_EQ(StepSignature(*r1.best_state), StepSignature(*r4.best_state));
}

TEST(SearchPolicy, BestStateVerifiesSemantics) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::MatmulRelu(16, 16, 16));
  SearchOptions options = testing::SmallSearchOptions();
  TuneResult result = TuneTask(task, &measurer, &model, 24, 16, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_EQ(VerifyAgainstNaive(*result.best_state), "");
}

TEST(SearchPolicy, LimitedSpaceFindsWorseOrEqualPrograms) {
  // Fig. 7 "Limited space": restricting the sketch space must not find better
  // programs than the full space under a generous budget.
  // Needs the seed budget: with a trimmed search the full space does not
  // reliably beat the limited one and the Fig. 7 claim cannot be asserted.
  SearchTask task = MakeTask(MakeTransposedConv2d(1, 64, 8, 8, 32, 4, 4, 2, 1));
  int budget = 64;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model1;
  SearchOptions full;
  full.population = 24;
  full.generations = 3;
  TuneResult full_result = TuneTask(task, &m1, &model1, budget, 16, full);

  Measurer m2(MachineModel::IntelCpu20Core());
  GbdtCostModel model2;
  SearchOptions limited = full;
  limited.sketch.enable_cache_write = false;
  limited.sketch.enable_rfactor = false;
  limited.sketch.space_levels = 2;
  limited.sketch.reduce_levels = 1;
  limited.sampler.unroll_options = {16};
  TuneResult limited_result = TuneTask(task, &m2, &model2, budget, 16, limited);

  ASSERT_TRUE(full_result.best_state.has_value());
  ASSERT_TRUE(limited_result.best_state.has_value());
  EXPECT_LE(full_result.best_seconds, limited_result.best_seconds * 1.15);
}

TEST(SearchPolicy, TaskIdStableAcrossConstruction) {
  SearchTask a = MakeTask(testing::Matmul(32, 32, 32));
  SearchTask b = MakeTask(testing::Matmul(32, 32, 32));
  EXPECT_EQ(a.task_id(), b.task_id());
  EXPECT_GT(a.flop_count(), 0.0);
}

TEST(Baselines, VendorLibraryProducesValidSchedule) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  TuneResult r = VendorLibrary(task, &measurer);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_LT(r.best_seconds, 1.0);
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

TEST(Baselines, VendorLibraryIsDeterministic) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(MakeConv2d(1, 32, 14, 14, 32, 3, 3, 1, 1));
  TuneResult a = VendorLibrary(task, &measurer);
  TuneResult b = VendorLibrary(task, &measurer);
  EXPECT_DOUBLE_EQ(a.best_seconds, b.best_seconds);
}

TEST(Baselines, TemplateSearchRespectsBudgetAndFindsPrograms) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  SearchTask task = MakeTask(testing::Matmul(64, 64, 64));
  TuneResult r = TemplateSearch(task, &measurer, 32);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_LE(measurer.trial_count(), 32 + 16);
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

TEST(Baselines, AnsorBeatsTemplateSearchOnT2D) {
  // The headline qualitative claim of Fig. 6: Ansor's larger space wins on
  // the transposed convolution (zero-multiplication elimination is outside
  // the template space).
  // Needs the seed budget: beating template search on T2D relies on the
  // evolutionary phase having room to discover the zero-multiplication trick.
  SearchTask task = MakeTask(MakeTransposedConv2d(1, 128, 8, 8, 64, 4, 4, 2, 1));
  int budget = 64;

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchOptions options;
  options.population = 24;
  options.generations = 3;
  TuneResult ansor = TuneTask(task, &m1, &model, budget, 16, options);

  Measurer m2(MachineModel::IntelCpu20Core());
  TuneResult tmpl = TemplateSearch(task, &m2, budget);

  ASSERT_TRUE(ansor.best_state.has_value());
  ASSERT_TRUE(tmpl.best_state.has_value());
  EXPECT_LT(ansor.best_seconds, tmpl.best_seconds * 1.02);
}

TEST(Baselines, BeamSearchProducesValidPrograms) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  SearchTask task = MakeTask(testing::MatmulRelu(16, 16, 16));
  BeamSearchOptions options;
  options.beam_width = 4;
  options.expansions_per_state = 2;
  TuneResult r = BeamSearch(task, &measurer, &model, 24, options);
  ASSERT_TRUE(r.best_state.has_value());
  EXPECT_EQ(VerifyAgainstNaive(*r.best_state), "");
}

}  // namespace
}  // namespace ansor
