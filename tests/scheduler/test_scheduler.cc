#include <gtest/gtest.h>

#include "src/scheduler/task_scheduler.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

SearchTask MakeTask(ComputeDAG dag, const std::string& name, int weight = 1,
                    const std::string& tag = "") {
  return MakeSearchTask(name, std::move(dag), weight, tag);
}

TaskSchedulerOptions FastOptions() {
  TaskSchedulerOptions options;
  options.measures_per_round = 8;
  options.search.population = 12;
  options.search.generations = 1;
  options.search.random_samples_per_round = 6;
  return options;
}

TEST(Scheduler, WarmUpVisitsEveryTask) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a"),
                                   MakeTask(testing::Matmul(64, 64, 64), "b"),
                                   MakeTask(testing::Matmul(64, 32, 64), "c")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1, 2}}};
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                          FastOptions());
  scheduler.Tune(/*total_rounds=*/3);
  for (int alloc : scheduler.allocations()) {
    EXPECT_EQ(alloc, 1);
  }
}

TEST(Scheduler, PrioritizesHighLatencyTask) {
  // One heavy task and two trivial ones: after warm-up, gradient descent
  // should spend most rounds on the heavy task (it dominates the objective).
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {
      MakeTask(MakeConv2d(8, 128, 28, 28, 128, 3, 3, 1, 1), "heavy"),
      MakeTask(testing::Matmul(16, 16, 16), "tiny1"),
      MakeTask(testing::Matmul(16, 32, 16), "tiny2")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1, 2}}};
  TaskSchedulerOptions options = FastOptions();
  options.eps_greedy = 0.0;
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model, options);
  scheduler.Tune(12);
  const auto& alloc = scheduler.allocations();
  EXPECT_GT(alloc[0], alloc[1]);
  EXPECT_GT(alloc[0], alloc[2]);
}

TEST(Scheduler, ObjectiveDecreasesOverTime) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(128, 128, 128), "m")};
  std::vector<NetworkSpec> nets = {{"net", {0}}};
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                          FastOptions());
  scheduler.Tune(6);
  const auto& history = scheduler.history();
  ASSERT_GE(history.size(), 2u);
  EXPECT_LE(history.back().second, history.front().second);
}

TEST(Scheduler, LatencyRequirementStopsSatisfiedNetwork) {
  // f2: once a network's latency is below its requirement, its tasks' gradient
  // becomes 0 and the other network receives the remaining rounds.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "small"),
                                   MakeTask(MakeConv2d(8, 64, 28, 28, 64, 3, 3, 1, 1), "big")};
  std::vector<NetworkSpec> nets = {{"netA", {0}}, {"netB", {1}}};
  TaskSchedulerOptions options = FastOptions();
  options.eps_greedy = 0.0;
  // netA's requirement is generous (any measured program satisfies it);
  // netB's is unattainable.
  TaskScheduler scheduler(tasks, nets, Objective::LatencyRequirement({10.0, 1e-9}),
                          &measurer, &model, options);
  scheduler.Tune(10);
  EXPECT_GT(scheduler.allocations()[1], scheduler.allocations()[0]);
}

TEST(Scheduler, GeoMeanSpeedupObjective) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(64, 64, 64), "m")};
  std::vector<NetworkSpec> nets = {{"net", {0}}};
  TaskScheduler scheduler(tasks, nets, Objective::GeoMeanSpeedup({1.0}), &measurer, &model,
                          FastOptions());
  scheduler.Tune(3);
  // Objective is negative geomean speedup; with a 1-second reference it must
  // be a large negative number (simulated latencies are far below 1 second).
  EXPECT_LT(scheduler.ObjectiveValue(), -1.0);
  EXPECT_GT(scheduler.NetworkLatency(0), 0.0);
}

TEST(Scheduler, EarlyStoppingDeprioritizesStagnantTask) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a"),
                                   MakeTask(testing::Matmul(64, 64, 64), "b")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
  TaskSchedulerOptions options = FastOptions();
  options.eps_greedy = 0.0;
  Objective objective = Objective::EarlyStopping(/*rounds=*/1);
  TaskScheduler scheduler(tasks, nets, objective, &measurer, &model, options);
  // Should not crash and should allocate all rounds.
  scheduler.Tune(8);
  EXPECT_EQ(scheduler.allocations()[0] + scheduler.allocations()[1], 8);
}

TEST(Scheduler, CustomObjective) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a")};
  std::vector<NetworkSpec> nets = {{"net", {0}}};
  Objective objective;
  objective.kind = ObjectiveKind::kCustom;
  objective.custom = [](const std::vector<double>& lat) { return 3.0 * lat[0]; };
  TaskScheduler scheduler(tasks, nets, objective, &measurer, &model, FastOptions());
  scheduler.Tune(2);
  EXPECT_NEAR(scheduler.ObjectiveValue(), 3.0 * scheduler.NetworkLatency(0), 1e-12);
}

TEST(Scheduler, TaskWeightsScaleNetworkLatency) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a", /*weight=*/5)};
  std::vector<NetworkSpec> nets = {{"net", {0}}};
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                          FastOptions());
  scheduler.Tune(2);
  double task_best = scheduler.tuners()[0]->best_seconds();
  EXPECT_NEAR(scheduler.NetworkLatency(0), 5.0 * task_best, 1e-12);
}

TEST(Scheduler, SimilarTasksInformGradient) {
  // Two same-tag matmuls: once one is tuned fast, the similarity term gives
  // the other a finite optimistic gradient (no crash, sane allocations).
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {
      MakeTask(testing::Matmul(64, 64, 64), "a", 1, "matmul"),
      MakeTask(testing::Matmul(128, 128, 128), "b", 1, "matmul")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                          FastOptions());
  scheduler.Tune(6);
  EXPECT_EQ(scheduler.allocations()[0] + scheduler.allocations()[1], 6);
  EXPECT_GE(scheduler.allocations()[0], 1);
  EXPECT_GE(scheduler.allocations()[1], 1);
}

}  // namespace
}  // namespace ansor

namespace ansor {
namespace {

TEST(SchedulerGradient, BackwardWindowTermUsesHistory) {
  // Directly exercise the §6.2 gradient approximation: a task whose latency
  // history is still falling steeply must out-prioritize one that has
  // flattened, all else equal.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(64, 64, 64), "a"),
                                   MakeTask(MakeMatmul(64, 64, 64, 2), "b")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
  TaskSchedulerOptions options = FastOptions();
  options.eps_greedy = 0.0;
  options.alpha = 1.0;  // trust only the backward window
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model, options);
  scheduler.Tune(6);
  // With alpha=1 the scheduler still allocates all rounds and never crashes
  // even when the backward difference is zero (flat history).
  EXPECT_EQ(scheduler.allocations()[0] + scheduler.allocations()[1], 6);
}

TEST(SchedulerGradient, BetaZeroDisablesSimilarityTerm) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {
      MakeTask(testing::Matmul(64, 64, 64), "a", 1, "matmul"),
      MakeTask(testing::Matmul(128, 128, 128), "b", 1, "matmul")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
  TaskSchedulerOptions options = FastOptions();
  options.beta = 0.0;  // similarity prediction says "latency can reach 0"
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model, options);
  scheduler.Tune(5);
  EXPECT_EQ(scheduler.allocations()[0] + scheduler.allocations()[1], 5);
}

TEST(SchedulerGradient, GoldenRngDrawOrderTrace) {
  // Executable spec of the pinned RNG draw-order contract (task_scheduler.h):
  // warm-up consumes no draws and visits tasks in index order; every
  // post-warm-up pick consumes exactly one Uniform() (the eps-greedy coin),
  // then exactly one Index(num_tasks) iff the coin explores. With
  // eps_greedy=1.0 every pick explores, so an independent Rng replaying that
  // draw sequence must reproduce the scheduler's allocation trace exactly.
  // If this test fails, a refactor reordered or added draws — which silently
  // changes every fixed-seed tuning run.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(16, 16, 16), "a"),
                                   MakeTask(testing::Matmul(32, 16, 16), "b"),
                                   MakeTask(testing::Matmul(16, 32, 16), "c")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1, 2}}};
  TaskSchedulerOptions options = FastOptions();
  options.eps_greedy = 1.0;
  options.seed = 123;
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model, options);
  scheduler.Tune(9);

  Rng replay(123);
  std::vector<int> expected = {0, 1, 2};  // warm-up: lowest-index unvisited, no draws
  for (int round = 3; round < 9; ++round) {
    double coin = replay.Uniform();
    ASSERT_LT(coin, 1.0);  // always below eps_greedy=1.0: always explore
    expected.push_back(static_cast<int>(replay.Index(tasks.size())));
  }
  EXPECT_EQ(scheduler.allocation_trace(), expected);
}

TEST(SchedulerGradient, EpsZeroTraceInvariantToSchedulerSeed) {
  // With eps_greedy=0 the per-pick Uniform() coin never explores and the
  // gradient argmax consumes no RNG, so the allocation trace cannot depend on
  // the scheduler seed at all.
  auto run = [](uint64_t seed) {
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a"),
                                     MakeTask(testing::Matmul(64, 64, 64), "b")};
    std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
    TaskSchedulerOptions options = FastOptions();
    options.eps_greedy = 0.0;
    options.seed = seed;
    TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                            options);
    scheduler.Tune(6);
    return scheduler.allocation_trace();
  };
  EXPECT_EQ(run(1), run(999));
}

TEST(Scheduler, StepwiseDriveMatchesTune) {
  // Driving the resumable-round interface by hand — including the async
  // submit / overlapped feature extraction the TuningService uses — must be
  // bit-identical to the legacy synchronous Tune().
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(32, 32, 32), "a"),
                                   MakeTask(testing::Matmul(64, 32, 32), "b")};
  std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
  TaskSchedulerOptions options = FastOptions();

  Measurer measurer_a(MachineModel::IntelCpu20Core());
  GbdtCostModel model_a;
  TaskScheduler legacy(tasks, nets, Objective::SumLatency(), &measurer_a, &model_a,
                       options);
  legacy.Tune(6);

  Measurer measurer_b(MachineModel::IntelCpu20Core());
  GbdtCostModel model_b;
  TaskScheduler stepwise(tasks, nets, Objective::SumLatency(), &measurer_b, &model_b,
                         options);
  for (int round = 0; round < 6; ++round) {
    int pick = stepwise.NextTask();
    TaskTuner* tuner = stepwise.tuners()[static_cast<size_t>(pick)].get();
    double before = tuner->best_seconds();
    PlannedRound planned = tuner->PlanRound(options.measures_per_round);
    PendingMeasureBatch batch = tuner->SubmitPlannedRound(planned);
    tuner->ExtractFeatures(&planned);  // overlaps the in-flight batch
    double after = tuner->CommitRound(std::move(planned), batch.Wait());
    stepwise.RecordRound(pick, before, after);
  }

  EXPECT_EQ(legacy.allocation_trace(), stepwise.allocation_trace());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy.tuners()[i]->best_seconds(),
                     stepwise.tuners()[i]->best_seconds());
  }
  EXPECT_EQ(measurer_a.trial_count(), measurer_b.trial_count());
}

TEST(SchedulerGradient, HistoryIsMonotoneNonIncreasing) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks = {MakeTask(testing::Matmul(128, 128, 128), "m")};
  std::vector<NetworkSpec> nets = {{"net", {0}}};
  TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &measurer, &model,
                          FastOptions());
  scheduler.Tune(5);
  const auto& history = scheduler.history();
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i].second, history[i - 1].second + 1e-12);
    EXPECT_GE(history[i].first, history[i - 1].first);
  }
}

}  // namespace
}  // namespace ansor
