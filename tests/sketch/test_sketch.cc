#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

bool HasStage(const State& state, const std::string& name) {
  return state.StageIndex(name) >= 0;
}

bool StageInlined(const State& state, const std::string& name) {
  int idx = state.StageIndex(name);
  return idx >= 0 && state.stage(idx).loc.kind == ComputeLocKind::kInlined;
}

bool StageComputedAt(const State& state, const std::string& name,
                     const std::string& target) {
  int idx = state.StageIndex(name);
  return idx >= 0 && state.stage(idx).loc.kind == ComputeLocKind::kAt &&
         state.stage(idx).loc.at_stage == target;
}

TEST(Sketch, MatmulReluGeneratesFusedSketch) {
  // Paper Figure 5, example input 1: the derivation
  //   Rule1(D) -> Rule4(C) -> Rule1(B) -> Rule1(A)
  // produces "Generated sketch 1": C multi-level tiled and fused into D.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  bool found_fused = false;
  for (const State& s : sketches) {
    if (StageComputedAt(s, "C", "D")) {
      found_fused = true;
      // C must carry the 10-level SSRSRS loop nest (2 space axes x 4 levels +
      // 1 reduce axis x 2 levels).
      const Stage& c = s.stage(s.StageIndex("C"));
      EXPECT_EQ(c.iters.size(), 10u);
      // D follows with 3 levels per axis.
      const Stage& d = s.stage(s.StageIndex("D"));
      EXPECT_EQ(d.iters.size(), 6u);
    }
  }
  EXPECT_TRUE(found_fused);
}

TEST(Sketch, PlainMatmulGetsCacheSketch) {
  // Example input without a fusible consumer: rule 5 adds C.cache, then rule 4
  // fuses it into C (paper "Generated sketch 2" shape).
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  bool found_cache = false;
  bool found_plain_tiling = false;
  for (const State& s : sketches) {
    if (HasStage(s, "C.cache") && StageComputedAt(s, "C.cache", "C")) {
      found_cache = true;
    }
    if (!HasStage(s, "C.cache")) {
      const Stage& c = s.stage(s.StageIndex("C"));
      if (c.iters.size() == 10u) {
        found_plain_tiling = true;
      }
    }
  }
  EXPECT_TRUE(found_cache);
  EXPECT_TRUE(found_plain_tiling);
}

TEST(Sketch, ReluPadMatmulInlinesRelu) {
  // Example input 2: B (relu) is strictly inlinable -> always inlined.
  ComputeDAG dag = testing::ReluPadMatmul(8, 4, 512, 400);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  for (const State& s : sketches) {
    EXPECT_TRUE(StageInlined(s, "B"));
  }
}

TEST(Sketch, TallSkinnyMatmulGetsRfactorSketch) {
  // Example input 2 has 8x4 output with a 512 reduction: rule 6 applies and
  // produces the "Generated sketch 3" structure with an E.rf stage.
  ComputeDAG dag = testing::ReluPadMatmul(8, 4, 512, 400);
  auto sketches = GenerateSketches(&dag);
  bool found_rfactor = false;
  for (const State& s : sketches) {
    if (HasStage(s, "E.rf")) {
      found_rfactor = true;
    }
  }
  EXPECT_TRUE(found_rfactor);
}

TEST(Sketch, NormWorkloadGetsRfactor) {
  ComputeDAG dag = testing::MatrixNorm(8, 512);
  auto sketches = GenerateSketches(&dag);
  bool found = false;
  for (const State& s : sketches) {
    found |= HasStage(s, "S.rf");
  }
  EXPECT_TRUE(found);
}

TEST(Sketch, SketchesAreDeduplicated) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  std::set<std::string> signatures;
  for (const State& s : sketches) {
    std::string sig;
    for (const Step& step : s.steps()) {
      sig += step.ToString() + ";";
    }
    EXPECT_TRUE(signatures.insert(sig).second) << "duplicate sketch: " << sig;
  }
}

TEST(Sketch, AllSketchesLowerAndVerify) {
  // Every sketch (with placeholder tile sizes of 1) must already be a valid,
  // semantics-preserving program.
  for (auto dag : {testing::MatmulRelu(8, 8, 8), testing::Matmul(8, 8, 8),
                   testing::ReluPadMatmul(8, 4, 64, 48), testing::MatrixNorm(4, 64)}) {
    auto sketches = GenerateSketches(&dag);
    ASSERT_FALSE(sketches.empty());
    for (const State& s : sketches) {
      EXPECT_EQ(VerifyAgainstNaive(s), "") << s.ToString();
    }
  }
}

TEST(Sketch, CustomRuleIntegrates) {
  // A user-defined rule that unconditionally adds an rfactor-style split to
  // reduction stages, demonstrating the registration mechanism of §4.1.
  SketchRule custom;
  custom.name = "CustomSplitReduction";
  custom.exclusive = false;
  custom.condition = [](const State& state, int i, const AnalysisConfig&) {
    const Stage& s = state.stage(i);
    return s.op->body.defined() && s.op->body.kind() == ExprKind::kReduce;
  };
  custom.apply = [](const State& state, int i) {
    State next = state;
    int n_space = static_cast<int>(state.stage(i).op->axis.size());
    std::vector<std::pair<State, int>> result;
    if (next.Split(state.stage(i).name(), n_space, {1})) {
      result.emplace_back(std::move(next), i - 1);
    }
    return result;
  };
  SketchOptions options;
  options.custom_rules.push_back(custom);
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  auto with_custom = GenerateSketches(&dag, options);
  auto without = GenerateSketches(&dag);
  EXPECT_GT(with_custom.size(), without.size());
}

TEST(Sketch, MaxSketchesBound) {
  SketchOptions options;
  options.max_sketches = 1;
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  auto sketches = GenerateSketches(&dag, options);
  EXPECT_EQ(sketches.size(), 1u);
}

TEST(Sketch, MultiLevelTilingHelperShape) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State state(&dag);
  auto steps = ApplyMultiLevelTiling(&state, "C");
  ASSERT_EQ(steps.size(), 2u);  // one split step per space axis
  const Stage& c = state.stage(state.StageIndex("C"));
  ASSERT_EQ(c.iters.size(), 10u);
  // Check the SSRSRS interleaving: kinds should be S S S S R S S R S S.
  std::vector<IterKind> kinds;
  for (const auto& it : c.iters) {
    kinds.push_back(it.kind);
  }
  std::vector<IterKind> expect = {IterKind::kSpace, IterKind::kSpace, IterKind::kSpace,
                                  IterKind::kSpace, IterKind::kReduce, IterKind::kSpace,
                                  IterKind::kSpace, IterKind::kReduce, IterKind::kSpace,
                                  IterKind::kSpace};
  EXPECT_EQ(kinds, expect);
}

}  // namespace
}  // namespace ansor
