// Shared helpers for the test suite: canonical workloads used across modules
// (the two example inputs of paper Figure 5, scaled down so interpretation is
// fast) and small utilities.
#ifndef ANSOR_TESTS_TESTING_H_
#define ANSOR_TESTS_TESTING_H_

#include <vector>

#include "src/dag/compute_dag.h"
#include "src/expr/operation.h"
#include "src/search/search_policy.h"

namespace ansor {
namespace testing {

// Small evolutionary-search budget shared by the search / integration suites:
// large enough for the qualitative paper claims (tuned beats random, full
// space beats limited space) to hold deterministically, small enough that the
// whole suite stays well under CI's two-minute ctest budget even in the
// sanitizer presets.
inline SearchOptions SmallSearchOptions(int population = 16, int generations = 2) {
  SearchOptions options;
  options.population = population;
  options.generations = generations;
  options.random_samples_per_round = 8;
  return options;
}

// Example input 1 of Figure 5: C = A x B followed by ReLU, square matrices.
inline ComputeDAG MatmulRelu(int64_t n = 16, int64_t m = 16, int64_t k = 16) {
  Tensor a = Placeholder("A", {n, k});
  Tensor b = Placeholder("B", {k, m});
  Tensor c = Compute("C", {n, m}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(k, "k");
    return Sum(a(i[0], r) * b(r, i[1]), {r});
  });
  Tensor d = Compute("D", {n, m}, [&](const std::vector<Expr>& i) {
    return Max(c(i[0], i[1]), FloatImm(0.0));
  });
  return ComputeDAG({a, b, c, d});
}

// Example input 2 of Figure 5: relu -> zero-pad -> tall-skinny matmul.
inline ComputeDAG ReluPadMatmul(int64_t rows = 8, int64_t cols = 4, int64_t inner = 16,
                                int64_t valid = 12) {
  Tensor a = Placeholder("A", {rows, valid});
  Tensor d = Placeholder("Dm", {inner, cols});
  Tensor b = Compute("B", {rows, valid}, [&](const std::vector<Expr>& i) {
    return Max(a(i[0], i[1]), FloatImm(0.0));
  });
  Tensor c = Compute("C", {rows, inner}, [&](const std::vector<Expr>& i) {
    return Select(i[1] < IntImm(valid), b(i[0], Min(i[1], IntImm(valid - 1))), FloatImm(0.0));
  });
  Tensor e = Compute("E", {rows, cols}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(inner, "k");
    return Sum(c(i[0], r) * d(r, i[1]), {r});
  });
  return ComputeDAG({a, d, b, c, e});
}

// Plain matmul without consumers.
inline ComputeDAG Matmul(int64_t n = 16, int64_t m = 16, int64_t k = 16) {
  Tensor a = Placeholder("A", {n, k});
  Tensor b = Placeholder("B", {k, m});
  Tensor c = Compute("C", {n, m}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(k, "k");
    return Sum(a(i[0], r) * b(r, i[1]), {r});
  });
  return ComputeDAG({a, b, c});
}

// Matrix 2-norm (the NRM operator): reduction-heavy, little space parallelism.
inline ComputeDAG MatrixNorm(int64_t n = 8, int64_t m = 64) {
  Tensor a = Placeholder("A", {n, m});
  Tensor s = Compute("S", {n}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(m, "k");
    return Sum(a(i[0], r) * a(i[0], r), {r});
  });
  Tensor nrm = Compute("N", {n}, [&](const std::vector<Expr>& i) {
    return CallIntrinsic(Intrinsic::kSqrt, {s(i[0])});
  });
  return ComputeDAG({a, s, nrm});
}

}  // namespace testing
}  // namespace ansor

#endif  // ANSOR_TESTS_TESTING_H_
