// TuningService tests: the determinism matrix (fixed-seed results must be
// bit-identical to the legacy synchronous TaskScheduler::Tune for any worker
// count and any concurrency), cross-task cache sharing, and chaos (deadline
// cancellation under injected measurement failures: no hang, no lost budget).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/service/tuning_service.h"
#include "src/store/record_store.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// Small per-job budget: large enough that the allocation trace leaves warm-up
// and the gradient/eps-greedy picks matter, small enough that the full 2x2
// matrix (plus legacy references) stays well inside the CI test timeout.
TaskSchedulerOptions ServiceTestOptions(uint64_t seed) {
  TaskSchedulerOptions options;
  options.measures_per_round = 6;
  options.seed = seed;
  options.search.population = 10;
  options.search.generations = 1;
  options.search.random_samples_per_round = 5;
  options.search.seed = seed * 31 + 7;
  return options;
}

// Two structurally similar matmuls sharing one similarity tag; job index
// varies the shapes so concurrent jobs are genuinely distinct workloads.
std::vector<SearchTask> JobTasks(int job) {
  int64_t n = 16 << (job % 2);
  return {MakeSearchTask("mm_a", testing::Matmul(n, 16, 16), 1, "mm"),
          MakeSearchTask("mm_b", testing::Matmul(16, n, 16), 1, "mm")};
}

JobSpec MakeJob(int job, int rounds, Measurer* measurer, CostModel* model) {
  JobSpec spec;
  spec.name = "job" + std::to_string(job);
  spec.tasks = JobTasks(job);
  spec.networks = {{"net", {0, 1}}};
  spec.objective = Objective::SumLatency();
  spec.options = ServiceTestOptions(100 + static_cast<uint64_t>(job));
  spec.total_rounds = rounds;
  spec.measurer = measurer;
  spec.model = model;
  return spec;
}

TEST(TuningService, DeterminismMatrixMatchesLegacy) {
  constexpr int kJobs = 3;
  constexpr int kRounds = 4;

  // Legacy references: one synchronous TaskScheduler::Tune per job spec, each
  // with its own fresh measurer and cost model.
  std::vector<std::vector<int>> ref_trace(kJobs);
  std::vector<std::vector<double>> ref_best(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    JobSpec spec = MakeJob(j, kRounds, &measurer, &model);
    TaskScheduler scheduler(spec.tasks, spec.networks, spec.objective, &measurer,
                            &model, spec.options);
    scheduler.Tune(kRounds);
    ref_trace[j] = scheduler.allocation_trace();
    for (const auto& tuner : scheduler.tuners()) {
      ref_best[j].push_back(tuner->best_seconds());
    }
  }

  // Service runs: every (worker count, concurrency) combination must
  // reproduce the references bit-for-bit, shared per-tag caches and all.
  for (int workers : {1, 4}) {
    for (int concurrent : {1, 3}) {
      TuningServiceOptions service_options;
      service_options.num_workers = workers;
      service_options.max_concurrent_jobs = concurrent;
      TuningService service(service_options);
      std::vector<std::unique_ptr<Measurer>> measurers;
      std::vector<std::unique_ptr<GbdtCostModel>> models;
      std::vector<JobHandle> handles;
      for (int j = 0; j < kJobs; ++j) {
        measurers.push_back(
            std::make_unique<Measurer>(MachineModel::IntelCpu20Core()));
        models.push_back(std::make_unique<GbdtCostModel>());
        handles.push_back(service.Submit(
            MakeJob(j, kRounds, measurers.back().get(), models.back().get())));
      }
      service.WaitAll();
      for (int j = 0; j < kJobs; ++j) {
        SCOPED_TRACE("workers=" + std::to_string(workers) +
                     " concurrent=" + std::to_string(concurrent) +
                     " job=" + std::to_string(j));
        const JobReport& report = handles[j].report();
        EXPECT_EQ(report.status, JobStatus::kCompleted);
        EXPECT_EQ(report.rounds_completed, kRounds);
        EXPECT_EQ(report.allocation_trace, ref_trace[j]);
        ASSERT_EQ(report.best_seconds.size(), ref_best[j].size());
        for (size_t t = 0; t < ref_best[j].size(); ++t) {
          EXPECT_DOUBLE_EQ(report.best_seconds[t], ref_best[j][t]);
        }
        // The job's trial accounting must agree with its dedicated measurer.
        EXPECT_EQ(report.trials, measurers[j]->trial_count());
      }
      service.Shutdown();
    }
  }
}

TEST(TuningService, CrossTaskCacheSharingAcrossJobs) {
  TuningServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_concurrent_jobs = 1;
  TuningService service(service_options);

  // Two identical jobs run back-to-back. The second retraces the first's
  // search exactly, so every program it compiles through the shared "mm"
  // cache was already built by the first job's tasks: its cross-client hit
  // count is deterministically nonzero.
  Measurer measurer_a(MachineModel::IntelCpu20Core());
  Measurer measurer_b(MachineModel::IntelCpu20Core());
  GbdtCostModel model_a;
  GbdtCostModel model_b;
  JobHandle a = service.Submit(MakeJob(0, 3, &measurer_a, &model_a));
  JobHandle b = service.Submit(MakeJob(0, 3, &measurer_b, &model_b));
  service.WaitAll();

  EXPECT_EQ(service.shared_cache_count(), 1u);
  const JobReport& report_b = b.report();
  EXPECT_GT(report_b.cache.lookups, 0);
  EXPECT_GT(report_b.cache.cross_client_hits, 0);
  EXPECT_GT(report_b.CrossTaskHitRate(), 0.0);
  EXPECT_GT(service.SharedCacheStats().cross_client_hits, 0);

  // Sharing must not change results: identical specs, identical outcomes.
  const JobReport& report_a = a.report();
  EXPECT_EQ(report_a.allocation_trace, report_b.allocation_trace);
  ASSERT_EQ(report_a.best_seconds.size(), report_b.best_seconds.size());
  for (size_t t = 0; t < report_a.best_seconds.size(); ++t) {
    EXPECT_DOUBLE_EQ(report_a.best_seconds[t], report_b.best_seconds[t]);
  }
}

TEST(TuningService, EmptyTagTasksKeepPrivateCaches) {
  TuningServiceOptions service_options;
  service_options.num_workers = 1;
  TuningService service(service_options);
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  JobSpec spec = MakeJob(0, 2, &measurer, &model);
  for (SearchTask& task : spec.tasks) {
    task.tag.clear();
  }
  JobHandle handle = service.Submit(std::move(spec));
  ASSERT_TRUE(handle.Wait(60.0));
  EXPECT_EQ(service.shared_cache_count(), 0u);
  const JobReport& report = handle.report();
  // Per-client counters still flow through the tuner-owned caches, but with
  // one client per cache there is nothing to share.
  EXPECT_GT(report.cache.lookups, 0);
  EXPECT_EQ(report.cache.cross_client_hits, 0);
}

TEST(TuningService, DeadlineCancellationNoHangNoLostBudget) {
  // Chaos: transient measurement failures plus emulated device latency plus a
  // deadline far below the job's full budget. The job must terminate promptly
  // with kDeadlineExceeded, and every trial the measurer charged must appear
  // in the report (cancelled items are charged by neither side).
  MeasureOptions measure_options;
  measure_options.measure_latency_seconds = 0.02;
  measure_options.fail_injector = [](const State& state) {
    return state.steps().size() % 3 == 0;
  };
  Measurer measurer(MachineModel::IntelCpu20Core(), measure_options);
  GbdtCostModel model;
  JobSpec spec = MakeJob(0, /*rounds=*/1000, &measurer, &model);
  spec.deadline_seconds = 0.2;

  TuningServiceOptions service_options;
  service_options.num_workers = 2;
  TuningService service(service_options);
  JobHandle handle = service.Submit(std::move(spec));
  ASSERT_TRUE(handle.Wait(/*timeout_seconds=*/60.0)) << "service hung past deadline";
  const JobReport& report = handle.report();
  EXPECT_EQ(report.status, JobStatus::kDeadlineExceeded);
  EXPECT_LT(report.rounds_completed, 1000);
  EXPECT_EQ(report.trials, measurer.trial_count());
}

TEST(TuningService, CancelStopsRunningAndQueuedJobs) {
  MeasureOptions measure_options;
  measure_options.measure_latency_seconds = 0.01;
  Measurer measurer_a(MachineModel::IntelCpu20Core(), measure_options);
  Measurer measurer_b(MachineModel::IntelCpu20Core(), measure_options);
  GbdtCostModel model_a;
  GbdtCostModel model_b;
  TuningServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_concurrent_jobs = 1;  // b queues behind a
  TuningService service(service_options);
  JobHandle a = service.Submit(MakeJob(0, 200, &measurer_a, &model_a));
  JobHandle b = service.Submit(MakeJob(1, 200, &measurer_b, &model_b));
  b.Cancel();
  a.Cancel();
  ASSERT_TRUE(a.Wait(60.0));
  ASSERT_TRUE(b.Wait(60.0));
  EXPECT_EQ(a.report().status, JobStatus::kCancelled);
  EXPECT_EQ(b.report().status, JobStatus::kCancelled);
  EXPECT_LT(a.report().rounds_completed, 200);
  EXPECT_LT(b.report().rounds_completed, 200);
  // Budget accounting stays exact for partially-run and never-run jobs alike.
  EXPECT_EQ(a.report().trials, measurer_a.trial_count());
  EXPECT_EQ(b.report().trials, measurer_b.trial_count());
}

TEST(TuningService, ReportTimingAndStatusNames) {
  TuningService service;
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  JobHandle handle = service.Submit(MakeJob(0, 1, &measurer, &model));
  ASSERT_TRUE(handle.Wait(60.0));
  EXPECT_EQ(handle.status(), JobStatus::kCompleted);
  const JobReport& report = handle.report();
  EXPECT_GE(report.queue_seconds, 0.0);
  EXPECT_GT(report.run_seconds, 0.0);
  EXPECT_GE(report.turnaround_seconds + 1e-9,
            report.queue_seconds + report.run_seconds);
  EXPECT_GT(report.trials, 0);
  EXPECT_STREQ(JobStatusName(JobStatus::kCompleted), "completed");
  EXPECT_STREQ(JobStatusName(JobStatus::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_TRUE(IsTerminal(JobStatus::kCancelled));
  EXPECT_FALSE(IsTerminal(JobStatus::kRunning));
}

TEST(TuningService, FleetRecordStoreAttributionIsExact) {
  RecordStore store;
  TuningServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.max_concurrent_jobs = 2;
  service_options.record_store = &store;
  TuningService service(service_options);
  Measurer measurer_a(MachineModel::IntelCpu20Core());
  Measurer measurer_b(MachineModel::IntelCpu20Core());
  GbdtCostModel model_a;
  GbdtCostModel model_b;
  JobHandle a = service.Submit(MakeJob(0, 2, &measurer_a, &model_a));
  JobHandle b = service.Submit(MakeJob(1, 2, &measurer_b, &model_b));
  service.WaitAll();

  EXPECT_GT(store.size(), 0u);
  const JobReport& report_a = a.report();
  const JobReport& report_b = b.report();
  EXPECT_GT(report_a.records.appended, 0);
  EXPECT_GT(report_b.records.appended, 0);

  // Every Add is attributed to exactly one (job, task) client, so the per-job
  // shares must sum to the fleet-wide counters even with concurrent tenants.
  RecordStoreStats totals = store.stats();
  EXPECT_EQ(report_a.records.appended + report_b.records.appended,
            totals.appended);
  EXPECT_EQ(report_a.records.deduplicated + report_b.records.deduplicated,
            totals.deduplicated);
  EXPECT_EQ(store.size(), static_cast<size_t>(totals.appended));

  // Live measurements carry throughput into the store (the transfer-learning
  // training signal a text log would have dropped).
  for (const TuningRecord& record : store.Snapshot()) {
    EXPECT_GT(record.throughput, 0.0);
  }
}

TEST(TuningService, WarmStartResumeIsBitIdenticalWithZeroRebuilds) {
  std::string path = ::testing::TempDir() + "/ansor_service_warm_state.bin";
  std::vector<double> cold_best;
  {
    TuningServiceOptions service_options;
    service_options.num_workers = 1;
    TuningService service(service_options);
    EXPECT_FALSE(service.warm_start_stats().ok);  // no path given: cold start
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    JobHandle handle = service.Submit(MakeJob(0, 3, &measurer, &model));
    service.WaitAll();
    cold_best = handle.report().best_seconds;
    EXPECT_GT(service.SharedCacheStats().misses, 0);  // cold run compiled
    ASSERT_TRUE(service.SaveWarmState(path));
  }
  {
    TuningServiceOptions service_options;
    service_options.num_workers = 1;
    service_options.warm_start_path = path;
    TuningService service(service_options);
    ASSERT_TRUE(service.warm_start_stats().ok);
    EXPECT_GT(service.warm_start_stats().loaded, 0u);
    EXPECT_EQ(service.warm_start_stats().skipped, 0u);

    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    JobHandle handle = service.Submit(MakeJob(0, 3, &measurer, &model));
    service.WaitAll();

    // The resumed run retraces the cold run exactly, and every program it
    // needs was captured: zero artifacts are rebuilt.
    ProgramCacheStats stats = service.SharedCacheStats();
    EXPECT_GT(stats.warm_inserts, 0);
    EXPECT_GT(stats.hits, 0);
    EXPECT_EQ(stats.misses, 0);

    // Warm start is an optimization, not a behavior change: bit-identical.
    const std::vector<double>& warm_best = handle.report().best_seconds;
    ASSERT_EQ(warm_best.size(), cold_best.size());
    for (size_t t = 0; t < cold_best.size(); ++t) {
      EXPECT_DOUBLE_EQ(warm_best[t], cold_best[t]);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ansor
