// Property-based test sweeps (TEST_P): the core invariants of the system
// checked across a grid of shapes, operators and random seeds.
//
// Invariant 1 (semantics): every program in the search space — any sketch,
//   any tile-size assignment, any annotation, any evolutionary edit —
//   computes exactly the same function as the naive program.
// Invariant 2 (replayability): a program is fully determined by its step
//   list; replaying the steps reproduces the same structure and performance.
// Invariant 3 (robustness): the search machinery never aborts on any
//   operator of the workload suite; invalid candidates fail gracefully.
#include <gtest/gtest.h>

#include "src/evolution/evolution.h"
#include "src/exec/interpreter.h"
#include "src/hwsim/measurer.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: sampled programs preserve semantics across shape grids.

struct ShapeCase {
  std::string name;
  int64_t n, m, k;
};

class SampledMatmulProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(SampledMatmulProperty, AllSampledProgramsComputeTheSameFunction) {
  const ShapeCase& shape = GetParam();
  ComputeDAG dag = testing::MatmulRelu(shape.n, shape.m, shape.k);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  Rng rng(shape.n * 1000 + shape.m * 10 + shape.k);
  int verified = 0;
  for (int trial = 0; trial < 12; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
    if (program.failed() || !Lower(program).ok) {
      continue;  // gracefully rejected candidates are fine
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 5) << "too few valid samples for " << shape.name;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, SampledMatmulProperty,
    ::testing::Values(ShapeCase{"square16", 16, 16, 16}, ShapeCase{"square12", 12, 12, 12},
                      ShapeCase{"tall", 32, 4, 16}, ShapeCase{"wide", 4, 32, 16},
                      ShapeCase{"deep", 8, 8, 64}, ShapeCase{"prime", 7, 11, 13},
                      ShapeCase{"mixed", 24, 6, 18}, ShapeCase{"tiny", 2, 2, 2}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Sweep 2: the full sketch -> sample -> measure pipeline works on every
// operator class of the paper's suite (small instances so interpretation is
// cheap), and the measured best is semantics-preserving.

struct OperatorCase {
  std::string name;
  std::function<ComputeDAG()> make;
};

class OperatorPipelineProperty : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(OperatorPipelineProperty, SketchSampleMeasureVerify) {
  ComputeDAG dag = GetParam().make();
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty()) << GetParam().name;

  Measurer measurer(MachineModel::IntelCpu20Core());
  Rng rng(101);
  State best(&dag);
  double best_seconds = 1e30;
  int valid = 0;
  for (int trial = 0; trial < 16; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
    if (program.failed()) {
      continue;
    }
    MeasureResult r = measurer.Measure(program);
    if (!r.valid) {
      continue;
    }
    ++valid;
    if (r.seconds < best_seconds) {
      best_seconds = r.seconds;
      best = program;
    }
  }
  ASSERT_GT(valid, 4) << GetParam().name;
  EXPECT_EQ(VerifyAgainstNaive(best), "") << GetParam().name << "\n" << best.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    OperatorSuite, OperatorPipelineProperty,
    ::testing::Values(
        OperatorCase{"c1d", [] { return MakeConv1d(1, 4, 16, 4, 3, 1, 1); }},
        OperatorCase{"c2d", [] { return MakeConv2d(1, 4, 8, 8, 4, 3, 3, 1, 1); }},
        OperatorCase{"c2d_stride", [] { return MakeConv2d(1, 4, 8, 8, 8, 3, 3, 2, 1); }},
        OperatorCase{"c3d", [] { return MakeConv3d(1, 2, 4, 6, 6, 2, 3, 3, 3, 1, 1); }},
        OperatorCase{"grp", [] { return MakeConv2d(1, 4, 6, 6, 4, 3, 3, 1, 1, 1, 2); }},
        OperatorCase{"dil", [] { return MakeConv2d(1, 2, 8, 8, 2, 3, 3, 1, 2, 2); }},
        OperatorCase{"dep", [] { return MakeDepthwiseConv2d(1, 4, 8, 8, 3, 3, 1, 1); }},
        OperatorCase{"t2d", [] { return MakeTransposedConv2d(1, 2, 4, 4, 2, 4, 4, 2, 1); }},
        OperatorCase{"cap", [] { return MakeCapsuleConv2d(1, 2, 4, 4, 2, 3, 3, 1, 1, 2); }},
        OperatorCase{"gmm", [] { return MakeMatmul(8, 8, 16); }},
        OperatorCase{"bmm", [] { return MakeMatmul(4, 4, 8, 2); }},
        OperatorCase{"nrm", [] { return MakeNorm(2, 64); }},
        OperatorCase{"convlayer", [] { return MakeConvLayer(1, 2, 6, 6, 2, 3, 3, 1, 1); }},
        OperatorCase{"tbg", [] { return MakeTBG(1, 4, 2, 4); }},
        OperatorCase{"dense", [] { return MakeDense(4, 8, 4); }}),
    [](const ::testing::TestParamInfo<OperatorCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Sweep 3: evolutionary edits preserve semantics across seeds.

class EvolutionEditProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvolutionEditProperty, MutationsAndCrossoverStaySound) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(seed);
  std::vector<State> population;
  while (population.size() < 4) {
    State s = SampleCompleteProgram(sketches[0], &dag, &rng);
    if (!s.failed() && Lower(s).ok) {
      population.push_back(std::move(s));
    }
  }
  RandomCostModel model(seed);
  EvolutionarySearch es(&dag, &model, Rng(seed + 1));
  int verified = 0;
  for (int trial = 0; trial < 12; ++trial) {
    State child(&dag);
    switch (trial % 4) {
      case 0:
        child = es.MutateTileSize(population[rng.Index(population.size())]);
        break;
      case 1:
        child = es.MutateVectorize(population[rng.Index(population.size())]);
        break;
      case 2:
        child = es.MutateComputeLocation(population[rng.Index(population.size())]);
        break;
      default:
        child = es.Crossover(population[rng.Index(population.size())],
                             population[rng.Index(population.size())]);
        break;
    }
    if (child.failed() || !Lower(child).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(child), "") << child.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvolutionEditProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Sweep 4: replay determinism — simulated cost is a pure function of the step
// list (required for measurement caching and record logs).

class ReplayDeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReplayDeterminismProperty, ReplayedProgramsMeasureIdentically) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  auto sketches = GenerateSketches(&dag);
  Rng rng(seed);
  Measurer measurer(MachineModel::IntelCpu20Core());
  int checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
    if (program.failed()) {
      continue;
    }
    MeasureResult original = measurer.Measure(program);
    if (!original.valid) {
      continue;
    }
    State replayed = State::Replay(&dag, program.steps());
    ASSERT_FALSE(replayed.failed());
    MeasureResult again = measurer.Measure(replayed);
    ASSERT_TRUE(again.valid);
    EXPECT_DOUBLE_EQ(again.seconds, original.seconds);
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminismProperty, ::testing::Range(10, 16));

// ---------------------------------------------------------------------------
// Sweep 5: GPU annotation policy stays sound across shapes.

class GpuSamplingProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(GpuSamplingProperty, GpuProgramsVerifyAndBind) {
  const ShapeCase& shape = GetParam();
  ComputeDAG dag = testing::MatmulRelu(shape.n, shape.m, shape.k);
  auto sketches = GenerateSketches(&dag);
  SamplerOptions options;
  options.gpu = true;
  Rng rng(shape.n + shape.m + shape.k);
  int verified = 0;
  for (int trial = 0; trial < 10; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng,
                                          options);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 3) << shape.name;
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, GpuSamplingProperty,
                         ::testing::Values(ShapeCase{"square16", 16, 16, 16},
                                           ShapeCase{"square32", 32, 32, 32},
                                           ShapeCase{"tall", 64, 4, 16},
                                           ShapeCase{"odd", 12, 20, 8}),
                         [](const ::testing::TestParamInfo<ShapeCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Sweep 6: simulator sanity across machine models — more compute never gets
// cheaper, and every machine produces positive finite costs for the suite.

class SimulatorMonotonicityProperty
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(SimulatorMonotonicityProperty, BiggerProblemsCostMore) {
  auto [machine_idx, base] = GetParam();
  MachineModel machine = machine_idx == 0   ? MachineModel::IntelCpu20Core()
                         : machine_idx == 1 ? MachineModel::ArmCpu4Core()
                                            : MachineModel::NvidiaGpu();
  ComputeDAG small = testing::Matmul(base, base, base);
  ComputeDAG big = testing::Matmul(base * 2, base * 2, base * 2);
  State ss(&small);
  State sb(&big);
  SimulatedCost cost_small = SimulateProgram(Lower(ss), machine);
  SimulatedCost cost_big = SimulateProgram(Lower(sb), machine);
  ASSERT_TRUE(cost_small.valid);
  ASSERT_TRUE(cost_big.valid);
  EXPECT_GT(cost_small.seconds, 0.0);
  EXPECT_TRUE(std::isfinite(cost_big.seconds));
  EXPECT_GT(cost_big.seconds, cost_small.seconds);
}

INSTANTIATE_TEST_SUITE_P(MachineGrid, SimulatorMonotonicityProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values<int64_t>(16, 32, 64)));

}  // namespace
}  // namespace ansor
