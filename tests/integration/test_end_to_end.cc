// End-to-end integration tests through the public API.
#include <gtest/gtest.h>

#include "src/core/ansor.h"
#include "src/exec/interpreter.h"
#include "tests/testing.h"

namespace ansor {
namespace {

AnsorOptions FastOptions() {
  AnsorOptions options;
  options.measures_per_round = 8;
  options.search = testing::SmallSearchOptions(/*population=*/12, /*generations=*/1);
  options.search.random_samples_per_round = 6;
  return options;
}

TEST(EndToEnd, AutoScheduleMatmul) {
  ComputeDAG dag = MakeMatmul(128, 128, 128);
  AnsorResult r = AutoSchedule(dag, /*trials=*/24, FastOptions());
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_NE(r.best_program.find("for"), std::string::npos);
}

TEST(EndToEnd, AutoScheduleConvOnAllTargets) {
  ComputeDAG dag = MakeConv2d(1, 32, 14, 14, 32, 3, 3, 1, 1);
  double intel = 0.0;
  double arm = 0.0;
  for (TargetKind target :
       {TargetKind::kIntelCpu, TargetKind::kArmCpu, TargetKind::kNvidiaGpu}) {
    AnsorOptions options = FastOptions();
    options.target = target;
    AnsorResult r = AutoSchedule(dag, 24, options);
    ASSERT_TRUE(r.ok) << "target " << static_cast<int>(target);
    if (target == TargetKind::kIntelCpu) {
      intel = r.seconds;
    }
    if (target == TargetKind::kArmCpu) {
      arm = r.seconds;
    }
  }
  EXPECT_GT(arm, intel);  // the edge CPU is slower
}

TEST(EndToEnd, BestProgramOfSearchIsCorrect) {
  // Full pipeline on the padded workload: sketch -> sample -> evolve ->
  // measure; the winner must still compute the right function.
  ComputeDAG dag = MakeConv2d(1, 4, 8, 8, 4, 3, 3, 1, 1);
  MeasureOptions mo;
  mo.verify_every = 1;  // verify every measured program against naive
  Measurer measurer(MachineModel::IntelCpu20Core(), mo);
  GbdtCostModel model;
  SearchTask task = MakeSearchTask("conv", dag);
  SearchOptions options = testing::SmallSearchOptions(/*population=*/12, /*generations=*/2);
  TuneResult result = TuneTask(task, &measurer, &model, 24, 8, options);
  ASSERT_TRUE(result.best_state.has_value());
  EXPECT_EQ(VerifyAgainstNaive(*result.best_state), "");
}

TEST(EndToEnd, TuneNetworksSharedScheduler) {
  // Two tiny "networks" sharing a deduplicated task.
  NetworkTasks net_a;
  net_a.name = "netA";
  net_a.tasks.push_back(MakeSearchTask("mm64", MakeMatmul(64, 64, 64), 2, "matmul"));
  NetworkTasks net_b = net_a;
  net_b.name = "netB";
  net_b.tasks.push_back(MakeSearchTask("mm32", MakeMatmul(32, 32, 32), 1, "matmul"));
  AnsorOptions options = FastOptions();
  auto results = TuneNetworks({net_a, net_b}, /*total_rounds=*/6,
                              Objective::SumLatency(), options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].latency_seconds, 0.0);
  EXPECT_GT(results[1].latency_seconds, 0.0);
  // netB contains netA's task plus one more.
  EXPECT_EQ(results[0].task_seconds.size(), 1u);
  EXPECT_EQ(results[1].task_seconds.size(), 2u);
  // The shared task was tuned once: identical best latency in both networks.
  EXPECT_DOUBLE_EQ(results[0].task_seconds[0], results[1].task_seconds[0]);
}

TEST(EndToEnd, MeasurerNoiseStillFindsPrograms) {
  ComputeDAG dag = MakeMatmul(64, 64, 64);
  AnsorOptions options = FastOptions();
  options.measurement_noise = 0.05;
  AnsorResult r = AutoSchedule(dag, 16, options);
  EXPECT_TRUE(r.ok);
}

}  // namespace
}  // namespace ansor
