// Fuzz-style robustness tests: the schedule machinery must never abort on
// arbitrary step sequences — invalid programs fail gracefully (failed state /
// failed lowering / failed measurement), because the evolutionary search
// routinely produces and discards such candidates.
#include <gtest/gtest.h>

#include <cmath>

#include "src/costmodel/cost_model.h"
#include "src/exec/interpreter.h"
#include "src/hwsim/measurer.h"
#include "src/program/program_cache.h"
#include "src/sampler/annotation.h"
#include "src/search/record_log.h"
#include "src/sketch/sketch.h"
#include "src/store/artifact_store.h"
#include "src/store/record_store.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// Generates a random (frequently invalid) step targeting random stages and
// iterators.
Step RandomStep(Rng* rng, const std::vector<std::string>& stage_names) {
  const std::string& stage = stage_names[rng->Index(stage_names.size())];
  switch (rng->Int(0, 9)) {
    case 0:
      return MakeSplitStep(stage, static_cast<int>(rng->Int(0, 6)),
                           {rng->Int(1, 8), rng->Int(1, 4)});
    case 1:
      return MakeFollowSplitStep(stage, static_cast<int>(rng->Int(0, 6)),
                                 static_cast<int>(rng->Int(0, 4)),
                                 static_cast<int>(rng->Int(2, 4)));
    case 2:
      return MakeFuseStep(stage, static_cast<int>(rng->Int(0, 5)),
                          static_cast<int>(rng->Int(2, 4)));
    case 3: {
      std::vector<int> order;
      size_t n = rng->Index(6) + 1;
      for (size_t i = 0; i < n; ++i) {
        order.push_back(static_cast<int>(rng->Int(0, static_cast<int64_t>(n) - 1)));
      }
      return MakeReorderStep(stage, order);
    }
    case 4:
      return MakeComputeAtStep(stage, stage_names[rng->Index(stage_names.size())],
                               static_cast<int>(rng->Int(0, 8)));
    case 5:
      return MakeComputeInlineStep(stage);
    case 6:
      return MakeCacheWriteStep(stage);
    case 7:
      return MakeRfactorStep(stage, static_cast<int>(rng->Int(0, 6)));
    case 8:
      return MakeAnnotationStep(stage, static_cast<int>(rng->Int(0, 8)),
                                static_cast<IterAnnotation>(rng->Int(0, 6)));
    default:
      return MakePragmaStep(stage, static_cast<int>(rng->Int(0, 600)));
  }
}

class StepFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StepFuzz, RandomStepSequencesNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  ComputeDAG dag = testing::MatmulRelu(12, 12, 12);
  std::vector<std::string> stage_names = {"C", "D", "C.cache", "C.rf", "nonexistent"};
  Measurer measurer(MachineModel::IntelCpu20Core());

  for (int seq = 0; seq < 20; ++seq) {
    std::vector<Step> steps;
    int n_steps = static_cast<int>(rng.Int(1, 10));
    for (int i = 0; i < n_steps; ++i) {
      steps.push_back(RandomStep(&rng, stage_names));
    }
    State state = State::Replay(&dag, steps);
    if (state.failed()) {
      continue;  // graceful rejection
    }
    // Valid replays must lower-or-fail gracefully and, when they lower and
    // execute, must preserve semantics.
    LoweredProgram prog = Lower(state);
    if (!prog.ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(state), "") << state.ToString();
    MeasureResult r = measurer.Measure(state);
    if (r.valid) {
      EXPECT_GT(r.seconds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFuzz, ::testing::Range(0, 10));

class RecordFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RecordFuzz, GarbageRecordLinesNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  const std::string alphabet = "task=|seconds;steps@SPCAFU,0123456789.e-";
  for (int i = 0; i < 200; ++i) {
    std::string line;
    size_t len = rng.Index(60);
    for (size_t c = 0; c < len; ++c) {
      line += alphabet[rng.Index(alphabet.size())];
    }
    auto record = ParseRecord(line);  // must not crash; value irrelevant
    if (record.has_value()) {
      EXPECT_TRUE(std::isfinite(record->seconds));
    }
    auto step = ParseStep(line);
    (void)step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFuzz, ::testing::Range(0, 4));

// A well-formed binary record container to mutate: a few tasks, realistic
// step lists, known totals.
std::string SeedRecordBytes() {
  RecordStore store;
  for (uint64_t task = 1; task <= 3; ++task) {
    for (int i = 0; i < 5; ++i) {
      TuningRecord r;
      r.task_id = task;
      r.seconds = 1e-3 / (1 + i);
      r.throughput = 1e9 * (1 + i);
      r.steps = {MakeSplitStep("C", 0, {4, static_cast<int64_t>(i + 1)}),
                 MakeAnnotationStep("C", 0, IterAnnotation::kParallel),
                 MakePragmaStep("C", 16 * (i + 1))};
      store.Add(std::move(r));
    }
  }
  return store.Serialize();
}

class BinaryRecordFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BinaryRecordFuzz, MutatedContainersNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1013 + 17);
  const std::string seed = SeedRecordBytes();

  // Truncation at arbitrary offsets: loaded + skipped never exceeds the
  // record count the intact file carries, and nothing crashes.
  for (int trial = 0; trial < 40; ++trial) {
    std::string cut = seed.substr(0, rng.Index(seed.size() + 1));
    RecordStore store(RecordStore::Options{false});
    RecordLoadStats stats = store.Deserialize(cut);
    EXPECT_EQ(store.size(), stats.loaded);
    EXPECT_LE(stats.loaded + stats.skipped, 15u);
  }

  // Random byte corruption (1-8 flips): decode must stay graceful, and
  // whatever does load must replay through the text codec (i.e. the decoder
  // never fabricates structurally broken steps).
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = seed;
    int flips = static_cast<int>(rng.Int(1, 8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.Index(bytes.size())] ^= static_cast<char>(rng.Int(1, 255));
    }
    RecordStore::ForEachRecord(bytes, [](TuningRecord r) {
      auto round = ParseRecord(SerializeRecord(r));
      EXPECT_TRUE(round.has_value());
    });
  }

  // Pure garbage, with and without a valid magic prefix.
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes;
    size_t len = rng.Index(400);
    for (size_t c = 0; c < len; ++c) {
      bytes += static_cast<char>(rng.Int(0, 255));
    }
    RecordStore store;
    store.Deserialize(bytes);                  // must not crash
    store.Deserialize("ANSRREC1" + bytes);     // recognized container, junk body
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryRecordFuzz, ::testing::Range(0, 4));

class ArtifactFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ArtifactFuzz, MutatedSnapshotsNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 31);
  ComputeDAG dag = testing::Matmul(12, 12, 12);
  ProgramCache cache(16, 1);
  {
    State a(&dag);
    ASSERT_TRUE(a.Split("C", 0, {4}));
    cache.GetOrBuild(a);
    State b(&dag);
    ASSERT_TRUE(b.Fuse("C", 0, 2));
    cache.GetOrBuild(b);
  }
  ArtifactStore seed_store;
  seed_store.CaptureCache(cache);
  const std::string seed = seed_store.Serialize();

  for (int trial = 0; trial < 60; ++trial) {
    std::string bytes = seed;
    switch (trial % 3) {
      case 0:
        bytes = bytes.substr(0, rng.Index(bytes.size() + 1));
        break;
      case 1:
        for (int f = 0; f < 4; ++f) {
          bytes[rng.Index(bytes.size())] ^= static_cast<char>(rng.Int(1, 255));
        }
        break;
      default: {
        bytes.clear();
        size_t len = rng.Index(300);
        for (size_t c = 0; c < len; ++c) {
          bytes += static_cast<char>(rng.Int(0, 255));
        }
        bytes = "ANSRART1" + bytes;
        break;
      }
    }
    ArtifactStore store;
    ArtifactLoadStats stats = store.Deserialize(bytes);  // must not crash
    EXPECT_EQ(store.size(), stats.loaded);
    // Whatever survived must be coherent enough to warm a cache.
    ProgramCache warm(16, 1);
    store.WarmCache(&warm, std::make_shared<const ComputeDAG>(dag));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtifactFuzz, ::testing::Range(0, 4));

class ModelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ModelFuzz, MutatedModelFilesNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 613 + 7);
  GbdtCostModel seed_model;
  std::vector<FeatureMatrix> programs;
  for (int p = 0; p < 6; ++p) {
    FeatureMatrix m;
    std::vector<float> row(8);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    m.AppendRow(row);
    programs.push_back(std::move(m));
  }
  seed_model.Update(1, programs, {1e9, 2e9, 3e9, 4e9, 5e9, 6e9});
  const std::string seed = seed_model.Serialize();

  for (int trial = 0; trial < 60; ++trial) {
    std::string bytes = seed;
    if (trial % 2 == 0) {
      bytes = bytes.substr(0, rng.Index(bytes.size() + 1));
    } else {
      for (int f = 0; f < 4; ++f) {
        bytes[rng.Index(bytes.size())] ^= static_cast<char>(rng.Int(1, 255));
      }
    }
    GbdtCostModel model;
    if (model.Deserialize(bytes)) {
      // A load that claims success must leave a usable model.
      std::vector<double> scores = model.Predict(programs);
      for (double s : scores) {
        EXPECT_TRUE(std::isfinite(s));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz, ::testing::Range(0, 4));

TEST(SamplerFuzz, HighTweakProbabilityStaysSound) {
  // Force the compute-location tweak on every sample: many placements are
  // invalid and must be rejected by lowering, never crash; valid ones verify.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  SamplerOptions options;
  options.location_tweak_probability = 1.0;
  Rng rng(123);
  int valid = 0;
  for (int trial = 0; trial < 30; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng,
                                          options);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++valid;
  }
  EXPECT_GT(valid, 5);
}

TEST(MeasurerFuzz, BatchWithMixedValidity) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  Measurer measurer(MachineModel::IntelCpu20Core());
  std::vector<State> batch;
  for (int i = 0; i < 6; ++i) {
    State s(&dag);
    if (i % 2 == 1) {
      s.Split("C", 99, {2});  // poison half the batch
    }
    batch.push_back(std::move(s));
  }
  auto results = measurer.MeasureBatch(batch);
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].valid, i % 2 == 0);
  }
}

}  // namespace
}  // namespace ansor
