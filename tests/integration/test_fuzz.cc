// Fuzz-style robustness tests: the schedule machinery must never abort on
// arbitrary step sequences — invalid programs fail gracefully (failed state /
// failed lowering / failed measurement), because the evolutionary search
// routinely produces and discards such candidates.
#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "src/hwsim/measurer.h"
#include "src/sampler/annotation.h"
#include "src/search/record_log.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// Generates a random (frequently invalid) step targeting random stages and
// iterators.
Step RandomStep(Rng* rng, const std::vector<std::string>& stage_names) {
  const std::string& stage = stage_names[rng->Index(stage_names.size())];
  switch (rng->Int(0, 9)) {
    case 0:
      return MakeSplitStep(stage, static_cast<int>(rng->Int(0, 6)),
                           {rng->Int(1, 8), rng->Int(1, 4)});
    case 1:
      return MakeFollowSplitStep(stage, static_cast<int>(rng->Int(0, 6)),
                                 static_cast<int>(rng->Int(0, 4)),
                                 static_cast<int>(rng->Int(2, 4)));
    case 2:
      return MakeFuseStep(stage, static_cast<int>(rng->Int(0, 5)),
                          static_cast<int>(rng->Int(2, 4)));
    case 3: {
      std::vector<int> order;
      size_t n = rng->Index(6) + 1;
      for (size_t i = 0; i < n; ++i) {
        order.push_back(static_cast<int>(rng->Int(0, static_cast<int64_t>(n) - 1)));
      }
      return MakeReorderStep(stage, order);
    }
    case 4:
      return MakeComputeAtStep(stage, stage_names[rng->Index(stage_names.size())],
                               static_cast<int>(rng->Int(0, 8)));
    case 5:
      return MakeComputeInlineStep(stage);
    case 6:
      return MakeCacheWriteStep(stage);
    case 7:
      return MakeRfactorStep(stage, static_cast<int>(rng->Int(0, 6)));
    case 8:
      return MakeAnnotationStep(stage, static_cast<int>(rng->Int(0, 8)),
                                static_cast<IterAnnotation>(rng->Int(0, 6)));
    default:
      return MakePragmaStep(stage, static_cast<int>(rng->Int(0, 600)));
  }
}

class StepFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StepFuzz, RandomStepSequencesNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  ComputeDAG dag = testing::MatmulRelu(12, 12, 12);
  std::vector<std::string> stage_names = {"C", "D", "C.cache", "C.rf", "nonexistent"};
  Measurer measurer(MachineModel::IntelCpu20Core());

  for (int seq = 0; seq < 20; ++seq) {
    std::vector<Step> steps;
    int n_steps = static_cast<int>(rng.Int(1, 10));
    for (int i = 0; i < n_steps; ++i) {
      steps.push_back(RandomStep(&rng, stage_names));
    }
    State state = State::Replay(&dag, steps);
    if (state.failed()) {
      continue;  // graceful rejection
    }
    // Valid replays must lower-or-fail gracefully and, when they lower and
    // execute, must preserve semantics.
    LoweredProgram prog = Lower(state);
    if (!prog.ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(state), "") << state.ToString();
    MeasureResult r = measurer.Measure(state);
    if (r.valid) {
      EXPECT_GT(r.seconds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFuzz, ::testing::Range(0, 10));

class RecordFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RecordFuzz, GarbageRecordLinesNeverAbort) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  const std::string alphabet = "task=|seconds;steps@SPCAFU,0123456789.e-";
  for (int i = 0; i < 200; ++i) {
    std::string line;
    size_t len = rng.Index(60);
    for (size_t c = 0; c < len; ++c) {
      line += alphabet[rng.Index(alphabet.size())];
    }
    auto record = ParseRecord(line);  // must not crash; value irrelevant
    if (record.has_value()) {
      EXPECT_TRUE(std::isfinite(record->seconds));
    }
    auto step = ParseStep(line);
    (void)step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFuzz, ::testing::Range(0, 4));

TEST(SamplerFuzz, HighTweakProbabilityStaysSound) {
  // Force the compute-location tweak on every sample: many placements are
  // invalid and must be rejected by lowering, never crash; valid ones verify.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  SamplerOptions options;
  options.location_tweak_probability = 1.0;
  Rng rng(123);
  int valid = 0;
  for (int trial = 0; trial < 30; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng,
                                          options);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++valid;
  }
  EXPECT_GT(valid, 5);
}

TEST(MeasurerFuzz, BatchWithMixedValidity) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  Measurer measurer(MachineModel::IntelCpu20Core());
  std::vector<State> batch;
  for (int i = 0; i < 6; ++i) {
    State s(&dag);
    if (i % 2 == 1) {
      s.Split("C", 99, {2});  // poison half the batch
    }
    batch.push_back(std::move(s));
  }
  auto results = measurer.MeasureBatch(batch);
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].valid, i % 2 == 0);
  }
}

}  // namespace
}  // namespace ansor
